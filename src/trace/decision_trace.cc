#include "src/trace/decision_trace.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"

namespace affsched {

namespace {

// Formats a double as a valid JSON number (JSON has no nan/inf literals).
std::string Num(double value) {
  if (!std::isfinite(value)) {
    return "null";
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.9g", value);
  return buf;
}

long long SignedIndex(size_t value) {
  return value == SIZE_MAX ? -1LL : static_cast<long long>(value);
}

}  // namespace

const char* DecisionReasonName(DecisionReason reason) {
  switch (reason) {
    case DecisionReason::kUnspecified:
      return "unspecified";
    case DecisionReason::kAffinityReunite:
      return "affinity_reunite";
    case DecisionReason::kAffinityDesired:
      return "affinity_desired";
    case DecisionReason::kFreeProcessor:
      return "free_processor";
    case DecisionReason::kYieldHandoff:
      return "yield_handoff";
    case DecisionReason::kPreemptEquitable:
      return "preempt_equitable";
    case DecisionReason::kRepartition:
      return "repartition";
    case DecisionReason::kQuantumRotate:
      return "quantum_rotate";
    case DecisionReason::kDemandHandoff:
      return "demand_handoff";
    case DecisionReason::kLocalQueue:
      return "local_queue";
    case DecisionReason::kSteal:
      return "steal";
    case DecisionReason::kBalanceMigrate:
      return "balance";
  }
  return "unknown";
}

const char* DecisionSiteName(DecisionSite site) {
  switch (site) {
    case DecisionSite::kUnknown:
      return "unknown";
    case DecisionSite::kJobArrival:
      return "job_arrival";
    case DecisionSite::kJobDeparture:
      return "job_departure";
    case DecisionSite::kProcessorAvailable:
      return "processor_available";
    case DecisionSite::kRequest:
      return "request";
    case DecisionSite::kQuantumExpiry:
      return "quantum_expiry";
    case DecisionSite::kReconcile:
      return "reconcile";
    case DecisionSite::kBalanceTick:
      return "balance_tick";
  }
  return "unknown";
}

std::string DecisionRecord::ToJson() const {
  std::ostringstream o;
  o << "{\"id\":" << id << ",\"t_us\":" << Num(ToMicroseconds(when)) << ",\"site\":\""
    << DecisionSiteName(site) << "\",\"reason\":\"" << DecisionReasonName(reason)
    << "\",\"job\":" << (job == kInvalidJobId ? -1LL : static_cast<long long>(job))
    << ",\"proc\":" << SignedIndex(chosen_proc) << ",\"prefer_task\":"
    << (prefer_task == kNoOwner ? -1LL : static_cast<long long>(prefer_task));
  if (!candidates.empty()) {
    o << ",\"candidates\":[";
    for (size_t i = 0; i < candidates.size(); ++i) {
      const DecisionCandidate& c = candidates[i];
      o << (i > 0 ? "," : "") << "{\"proc\":" << SignedIndex(c.proc)
        << ",\"tier\":" << SignedIndex(c.tier)
        << ",\"footprint_blocks\":" << Num(c.footprint_blocks)
        << ",\"reload_cost_s\":" << Num(c.reload_cost_s)
        << ",\"available\":" << (c.available ? "true" : "false")
        << ",\"chosen\":" << (c.chosen ? "true" : "false") << "}";
    }
    o << "]";
  }
  o << "}";
  return o.str();
}

DecisionTrace::DecisionTrace(size_t capacity) : capacity_(capacity) {
  AFF_CHECK(capacity_ > 0);
  ring_.reserve(std::min<size_t>(capacity_, 4096));
}

void DecisionTrace::Record(DecisionRecord record) {
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(record));
  } else {
    ring_[count_ % capacity_] = std::move(record);
  }
  ++count_;
}

std::vector<DecisionRecord> DecisionTrace::Records() const {
  std::vector<DecisionRecord> out;
  out.reserve(size());
  if (count_ <= capacity_) {
    out = ring_;
  } else {
    const size_t head = count_ % capacity_;
    out.insert(out.end(), ring_.begin() + static_cast<long>(head), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<long>(head));
  }
  return out;
}

std::string DecisionTrace::ToJsonl() const {
  std::ostringstream out;
  for (const DecisionRecord& record : Records()) {
    out << record.ToJson() << "\n";
  }
  if (dropped() > 0) {
    out << "{\"dropped\":" << dropped() << "}\n";
  }
  return out.str();
}

}  // namespace affsched
