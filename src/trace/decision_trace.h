// Decision-provenance tracing: a structured record of *why* the allocator
// placed a job on a processor — the candidate processor set, each candidate's
// affinity score breakdown (resident footprint, migration distance tier,
// estimated reload cost), the chosen processor, and the policy reason code.
//
// RingTrace (trace.h) answers "what happened on each processor"; this layer
// answers "why did the scheduler do that". The engine assembles one
// DecisionRecord per realised policy assignment and streams it through the
// DecisionSink interface; a null sink costs a single pointer compare on the
// dispatch path (verified by the BM_EventQueueScheduleRun microbench floor).
// DecisionTrace is the bounded in-memory sink, exportable as JSONL and (via
// ChromeTraceWriter) as Perfetto flow events linked to the per-proc tracks.

#ifndef SRC_TRACE_DECISION_TRACE_H_
#define SRC_TRACE_DECISION_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/exact_cache.h"
#include "src/common/time.h"
#include "src/workload/job.h"

namespace affsched {

// Why a policy granted a processor. The codes mirror the rule names of
// Section 5 of the paper (A.1/A.2 affinity rules, D.1-D.3 dynamic rules).
enum class DecisionReason : uint8_t {
  kUnspecified,       // policy did not annotate the assignment
  kAffinityReunite,   // rule A.1: reunite a task with its surviving context
  kAffinityDesired,   // rule A.2: the job's desired processor (tier-widened)
  kFreeProcessor,     // rule D.1: an unallocated processor
  kYieldHandoff,      // rule D.2: a willing-to-yield processor changed hands
  kPreemptEquitable,  // rule D.3: equitable preemption (credit-gated)
  kRepartition,       // a full-target reconcile moved this processor
  kQuantumRotate,     // time-sharing quantum expiry rotation
  kDemandHandoff,     // largest-unmet-demand handoff (TimeShare baseline)
  kLocalQueue,        // multi-queue: work served from the processor's own queue
  kSteal,             // multi-queue: work pulled from another queue's home
  kBalanceMigrate,    // multi-queue: periodic load-balance migration
};

const char* DecisionReasonName(DecisionReason reason);

// Number of distinct DecisionReason values (for iteration in tests).
inline constexpr size_t kNumDecisionReasons =
    static_cast<size_t>(DecisionReason::kBalanceMigrate) + 1;

// Which engine decision point produced the record.
enum class DecisionSite : uint8_t {
  kUnknown,
  kJobArrival,
  kJobDeparture,
  kProcessorAvailable,
  kRequest,
  kQuantumExpiry,
  kReconcile,
  kBalanceTick,
};

const char* DecisionSiteName(DecisionSite site);

inline constexpr size_t kNumDecisionSites =
    static_cast<size_t>(DecisionSite::kBalanceTick) + 1;

// One candidate processor's affinity score breakdown at decision time.
struct DecisionCandidate {
  size_t proc = SIZE_MAX;
  // Migration distance tier from the reference task's last processor
  // (SIZE_MAX when the task has no placement history — nothing migrates).
  size_t tier = SIZE_MAX;
  // Cache blocks of the reference task's context resident on this processor.
  double footprint_blocks = 0.0;
  // Estimated reload transient to rebuild the job's working set here, in
  // seconds: missing blocks x miss service time.
  double reload_cost_s = 0.0;
  // Free, or advertised willing-to-yield with no committed reassignment.
  bool available = false;
  bool chosen = false;
};

// One realised scheduling decision.
struct DecisionRecord {
  uint64_t id = 0;  // 1-based, monotonically increasing per engine
  SimTime when = 0;
  DecisionSite site = DecisionSite::kUnknown;
  DecisionReason reason = DecisionReason::kUnspecified;
  JobId job = kInvalidJobId;
  size_t chosen_proc = SIZE_MAX;
  // Task the policy asked to see dispatched (kNoOwner when it left the
  // choice to the engine).
  CacheOwner prefer_task = kNoOwner;
  std::vector<DecisionCandidate> candidates;

  // One JSON object, no trailing newline.
  std::string ToJson() const;
};

// Receives decision records from the engine.
class DecisionSink {
 public:
  virtual ~DecisionSink() = default;
  virtual void Record(DecisionRecord record) = 0;
};

// Stores up to `capacity` records (oldest dropped first), mirroring
// RingTrace's eviction contract.
class DecisionTrace : public DecisionSink {
 public:
  explicit DecisionTrace(size_t capacity = 1 << 16);

  void Record(DecisionRecord record) override;

  // Records in chronological order (oldest retained first).
  std::vector<DecisionRecord> Records() const;

  size_t size() const { return count_ < capacity_ ? static_cast<size_t>(count_) : capacity_; }
  uint64_t total_recorded() const { return count_; }
  size_t dropped() const {
    return count_ > capacity_ ? static_cast<size_t>(count_ - capacity_) : 0;
  }

  // One JSON object per line. When records were dropped, the final line is a
  // {"dropped": N} marker (still valid JSONL) so consumers can detect a
  // truncated trace — the analogue of RingTrace::ToCsv()'s "# dropped=N".
  std::string ToJsonl() const;

 private:
  size_t capacity_;
  uint64_t count_ = 0;
  std::vector<DecisionRecord> ring_;
};

}  // namespace affsched

#endif  // SRC_TRACE_DECISION_TRACE_H_
