// Execution tracing: a bounded record of scheduling events (dispatches,
// preemptions, yields, thread and job completions) that can be exported as
// CSV or rendered as an ASCII Gantt chart of processor occupancy.
//
// The engine emits events through the TraceSink interface; a null sink costs
// one virtual call per event. Traces make scheduling behaviour inspectable —
// the examples use them to *show* the difference between Equipartition's
// static placement and Dynamic's processor churn.

#ifndef SRC_TRACE_TRACE_H_
#define SRC_TRACE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/exact_cache.h"
#include "src/common/time.h"
#include "src/workload/job.h"

namespace affsched {

enum class TraceEventKind : uint8_t {
  kJobArrival,
  kJobCompletion,
  kSwitchStart,    // reallocation path-length cost begins on a processor
  kDispatch,       // worker activated on a processor (a reallocation)
  kResume,         // a holding worker picked up new work (no reallocation)
  kPreempt,        // worker stopped at a chunk boundary for another job
  kHold,           // worker idles holding the processor
  kYield,          // processor advertised willing-to-yield
  kRelease,        // processor leaves its holding job
  kThreadComplete,
  kDeadlineMiss,   // rt job completed after its relative deadline
};

const char* TraceEventKindName(TraceEventKind kind);

// Inverse of TraceEventKindName (CSV/trace ingestion). Returns false and
// leaves `kind` untouched when `name` matches no event kind.
bool TraceEventKindFromName(const std::string& name, TraceEventKind* kind);

// Number of distinct TraceEventKind values (for iteration in tests).
inline constexpr size_t kNumTraceEventKinds =
    static_cast<size_t>(TraceEventKind::kDeadlineMiss) + 1;

struct TraceEvent {
  SimTime when = 0;
  TraceEventKind kind = TraceEventKind::kDispatch;
  size_t proc = SIZE_MAX;          // SIZE_MAX when not processor-specific
  JobId job = kInvalidJobId;
  CacheOwner worker = kNoOwner;    // kNoOwner when not worker-specific
  // True for dispatches landing the worker on its previous processor.
  bool affine = false;
};

// Receives events from the engine.
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Record(const TraceEvent& event) = 0;
};

// Stores up to `capacity` events (oldest dropped first).
class RingTrace : public TraceSink {
 public:
  explicit RingTrace(size_t capacity = 1 << 20);

  void Record(const TraceEvent& event) override;

  // Events in chronological order (oldest retained first).
  std::vector<TraceEvent> Events() const;

  size_t size() const { return count_ < capacity_ ? count_ : capacity_; }
  uint64_t total_recorded() const { return count_; }
  size_t dropped() const {
    return count_ > capacity_ ? static_cast<size_t>(count_ - capacity_) : 0;
  }

  // One line per event: "time_us,kind,proc,job,worker,affine".
  std::string ToCsv() const;

  // ASCII Gantt chart: one row per processor, one column per time bucket,
  // cell = job id occupying the processor ('.' idle, '*' switching).
  std::string RenderGantt(size_t num_procs, SimTime start, SimTime end, size_t columns = 100) const;

 private:
  size_t capacity_;
  uint64_t count_ = 0;
  std::vector<TraceEvent> ring_;
};

}  // namespace affsched

#endif  // SRC_TRACE_TRACE_H_
