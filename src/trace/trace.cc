#include "src/trace/trace.h"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "src/common/check.h"

namespace affsched {

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kJobArrival:
      return "job_arrival";
    case TraceEventKind::kJobCompletion:
      return "job_completion";
    case TraceEventKind::kSwitchStart:
      return "switch_start";
    case TraceEventKind::kDispatch:
      return "dispatch";
    case TraceEventKind::kResume:
      return "resume";
    case TraceEventKind::kPreempt:
      return "preempt";
    case TraceEventKind::kHold:
      return "hold";
    case TraceEventKind::kYield:
      return "yield";
    case TraceEventKind::kRelease:
      return "release";
    case TraceEventKind::kThreadComplete:
      return "thread_complete";
    case TraceEventKind::kDeadlineMiss:
      return "deadline_miss";
  }
  return "unknown";
}

bool TraceEventKindFromName(const std::string& name, TraceEventKind* kind) {
  for (size_t i = 0; i < kNumTraceEventKinds; ++i) {
    const TraceEventKind candidate = static_cast<TraceEventKind>(i);
    if (name == TraceEventKindName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

RingTrace::RingTrace(size_t capacity) : capacity_(capacity) {
  AFF_CHECK(capacity_ > 0);
  ring_.reserve(std::min<size_t>(capacity_, 4096));
}

void RingTrace::Record(const TraceEvent& event) {
  if (ring_.size() < capacity_) {
    ring_.push_back(event);
  } else {
    ring_[count_ % capacity_] = event;
  }
  ++count_;
}

std::vector<TraceEvent> RingTrace::Events() const {
  std::vector<TraceEvent> out;
  out.reserve(size());
  if (count_ <= capacity_) {
    out = ring_;
  } else {
    const size_t head = count_ % capacity_;
    out.insert(out.end(), ring_.begin() + static_cast<long>(head), ring_.end());
    out.insert(out.end(), ring_.begin(), ring_.begin() + static_cast<long>(head));
  }
  return out;
}

std::string RingTrace::ToCsv() const {
  std::ostringstream out;
  out << "time_us,kind,proc,job,worker,affine\n";
  for (const TraceEvent& e : Events()) {
    char line[160];
    std::snprintf(line, sizeof(line), "%.3f,%s,%lld,%lld,%llu,%d\n",
                  ToMicroseconds(e.when), TraceEventKindName(e.kind),
                  e.proc == SIZE_MAX ? -1LL : static_cast<long long>(e.proc),
                  e.job == kInvalidJobId ? -1LL : static_cast<long long>(e.job),
                  static_cast<unsigned long long>(e.worker), e.affine ? 1 : 0);
    out << line;
  }
  if (dropped() > 0) {
    // Trailing comment so downstream consumers can detect a truncated trace.
    out << "# dropped=" << dropped() << "\n";
  }
  return out.str();
}

std::string RingTrace::RenderGantt(size_t num_procs, SimTime start, SimTime end,
                                   size_t columns) const {
  AFF_CHECK(end > start);
  AFF_CHECK(columns > 0);
  // grid[proc][col]: last state seen at or before the bucket.
  std::vector<std::string> grid(num_procs, std::string(columns, '.'));
  // Track occupancy by replaying events in order.
  std::vector<char> state(num_procs, '.');
  const double span = static_cast<double>(end - start);
  size_t cursor = 0;  // next column to fill

  auto fill_until = [&](SimTime t) {
    double frac = static_cast<double>(t - start) / span;
    frac = std::clamp(frac, 0.0, 1.0);
    const size_t col = static_cast<size_t>(frac * static_cast<double>(columns));
    for (; cursor < col && cursor < columns; ++cursor) {
      for (size_t p = 0; p < num_procs; ++p) {
        grid[p][cursor] = state[p];
      }
    }
  };

  auto job_char = [](JobId job) -> char {
    if (job == kInvalidJobId) {
      return '.';
    }
    if (job < 10) {
      return static_cast<char>('0' + job);
    }
    return static_cast<char>('A' + (job - 10) % 26);
  };

  for (const TraceEvent& e : Events()) {
    if (e.when < start) {
      continue;
    }
    if (e.when > end) {
      break;
    }
    fill_until(e.when);
    if (e.proc >= num_procs) {
      continue;
    }
    switch (e.kind) {
      case TraceEventKind::kSwitchStart:
        state[e.proc] = '*';
        break;
      case TraceEventKind::kDispatch:
      case TraceEventKind::kResume:
        state[e.proc] = job_char(e.job);
        break;
      case TraceEventKind::kHold:
      case TraceEventKind::kYield:
        state[e.proc] = static_cast<char>(std::tolower(job_char(e.job)));
        // Digits have no lowercase: mark held processors with a distinct glyph.
        if (e.job != kInvalidJobId && e.job < 10) {
          state[e.proc] = static_cast<char>('a' + e.job % 26);
        }
        break;
      case TraceEventKind::kPreempt:
      case TraceEventKind::kRelease:
        state[e.proc] = '.';
        break;
      default:
        break;
    }
  }
  fill_until(end);

  std::ostringstream out;
  out << "Gantt (" << FormatDuration(start) << " .. " << FormatDuration(end)
      << "; digits = running job, letters = holding idle, '*' = switching, '.' = free)\n";
  for (size_t p = 0; p < num_procs; ++p) {
    char label[16];
    std::snprintf(label, sizeof(label), "p%02zu ", p);
    out << label << grid[p] << "\n";
  }
  return out.str();
}

}  // namespace affsched
