#include "src/runner/cell_seed.h"

#include "src/common/rng.h"

namespace affsched {

uint64_t DeriveSeed(uint64_t root_seed, std::initializer_list<uint64_t> coordinates) {
  // SplitMix64 each input before combining so that nearby roots/coordinates
  // (seed 1000 vs 1001, rep 0 vs 1) land in unrelated regions of seed space.
  uint64_t state = root_seed;
  uint64_t h = SplitMix64(state);
  for (uint64_t coordinate : coordinates) {
    uint64_t c = coordinate;
    h ^= SplitMix64(c) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return SplitMix64(h);
}

uint64_t DeriveCellSeed(uint64_t root_seed, int mix_number, std::size_t replication) {
  return DeriveSeed(root_seed, {static_cast<uint64_t>(mix_number),
                                static_cast<uint64_t>(replication)});
}

}  // namespace affsched
