#include "src/runner/cell_seed.h"

#include <cstdlib>
#include <string>

#include "src/common/check.h"
#include "src/common/rng.h"

namespace affsched {

uint64_t DeriveSeed(uint64_t root_seed, std::initializer_list<uint64_t> coordinates) {
  // SplitMix64 each input before combining so that nearby roots/coordinates
  // (seed 1000 vs 1001, rep 0 vs 1) land in unrelated regions of seed space.
  uint64_t state = root_seed;
  uint64_t h = SplitMix64(state);
  for (uint64_t coordinate : coordinates) {
    uint64_t c = coordinate;
    h ^= SplitMix64(c) + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return SplitMix64(h);
}

std::string SeedToDecimal(uint64_t seed) { return std::to_string(seed); }

uint64_t SeedFromDecimal(const std::string& text) {
  return std::strtoull(text.c_str(), nullptr, 10);
}

uint64_t DeriveCellSeed(uint64_t root_seed, int mix_number, std::size_t replication) {
  // Common-random-numbers invariant: a cell's coordinates are exactly
  // (mix number, replication) — the policy is never hashed in, so every
  // policy replays the same workload draws for a given cell and policy
  // comparisons are paired. Mix numbers are 1-based (Table 2); a zero or
  // negative mix would collide with the replication coordinate space.
  AFF_CHECK_MSG(mix_number >= 1, "mix numbers are 1-based (Table 2)");
  const uint64_t seed = DeriveSeed(
      root_seed, {static_cast<uint64_t>(mix_number), static_cast<uint64_t>(replication)});
  // Seeds-are-decimal invariant: sweep JSON stores seeds as unquoted decimal
  // integers, and every derived seed must round-trip through that text
  // exactly (never through a double, which silently rounds above 2^53).
  AFF_CHECK(SeedFromDecimal(SeedToDecimal(seed)) == seed);
  return seed;
}

uint64_t DeriveOpenCellSeed(uint64_t root_seed, std::size_t arrival_index, int rho_permille,
                            std::size_t replication) {
  AFF_CHECK_MSG(rho_permille >= 1, "offered load must be positive");
  // 'O' << 8 | 'S': a tag outside any mix-number range, so open cells can
  // never collide with closed DeriveCellSeed cells of the same root.
  constexpr uint64_t kOpenTag = 0x4F53;
  const uint64_t seed =
      DeriveSeed(root_seed, {kOpenTag, static_cast<uint64_t>(arrival_index),
                             static_cast<uint64_t>(rho_permille), static_cast<uint64_t>(replication)});
  AFF_CHECK(SeedFromDecimal(SeedToDecimal(seed)) == seed);
  return seed;
}

}  // namespace affsched
