// Sweep grids: the declarative description of a (policy x mix x replication)
// experiment grid, and the machine-readable results a SweepRunner produces
// from one.
//
// A sweep expands into independent cells — one simulation per (policy, mix,
// replication) — whose seeds come from DeriveCellSeed, so any execution
// order yields the same SweepResult. ToJson() emits a stable, schema-
// versioned document (no wall-clock, no hostnames) that is byte-identical
// across worker counts and machines; CI diffs it against a committed
// baseline. With SweepSpec::observability the document becomes
// schema_version 3 and gains a top-level "observability" object holding a
// per-experiment affinity-efficiency summary:
//   "observability": {"experiments": [
//     {"policy": "dyn-aff", "mix": 5,
//      "reload_transient_fraction": ..., "affine_fraction": ...,
//      "migrations": {"same_core": ..., "same_cluster": ...,
//                     "same_node": ..., "cross_node": ...}}]}
//
// JSON schema (schema_version 1), field order fixed:
//   {
//     "schema_version": 1,
//     "tool": "sweep_runner",
//     "spec": {
//       "name": "fig5", "root_seed": 1000,
//       "machine": {"procs": 16, "speed": 1, "cache": 1},
//       "policies": ["equi", "dynamic", ...],       // CLI names
//       "mixes": [1, 2, ...],                        // Table 2 numbers
//       "replications": {"min": 3, "max": 5, "precision": 0.02,
//                        "confidence": 0.95}
//     },
//     "experiments": [                               // mix-major, then policy
//       {"policy": "equi", "mix": 5, "replications": 3,
//        "jobs": [{"index": 0, "app": "MATRIX",
//                  "mean_response_s": ..., "ci_half_width_s": ...,
//                  "mean_stats": {"useful_work_s": ..., "reload_stall_s": ...,
//                    "steady_stall_s": ..., "switch_s": ..., "waste_s": ...,
//                    "alloc_integral_s": ..., "reallocations": ...,
//                    "affinity_dispatches": ..., "affinity_fraction": ...,
//                    "realloc_interval_s": ..., "avg_alloc": ...}}],
//        "cells": [{"rep": 0, "seed": 123456789, "makespan_s": ...,
//                   "response_s": [...]}]}],
//     "relative_response": [                         // present when the grid
//       {"mix": 5, "policy": "dynamic", "job": 0,    // includes Equipartition
//        "app": "MATRIX", "ratio": 0.97}]
//   }
// Seeds are unquoted decimal integers (64-bit values round-trip exactly
// through text; parsers with big-int support read them losslessly).

#ifndef SRC_RUNNER_SWEEP_H_
#define SRC_RUNNER_SWEEP_H_

#include <string>
#include <vector>

#include "src/measure/experiment.h"
#include "src/measure/mixes.h"
#include "src/sched/factory.h"

namespace affsched {

struct SweepSpec {
  std::string name = "custom";
  MachineConfig machine;
  // Application set the mixes index into ({MVA, MATRIX, GRAVITY} order).
  std::vector<AppProfile> apps;
  std::vector<PolicyKind> policies;
  std::vector<WorkloadMix> mixes;
  ReplicationOptions replication;
  EngineOptions engine;
  uint64_t root_seed = 1000;
  // Opt-in schema-v3 "observability" block in ToJson(): per-experiment
  // affinity-efficiency derivations (reload-transient fraction, affine
  // fraction, the per-tier migration matrix). Off by default so the default
  // document stays byte-identical to schema_version 1 (pinned by
  // tests/golden/). Spec key: observability=1.
  bool observability = false;
  // Real-time mode: stamp the deadline mix onto every expanded job list
  // before simulating, add per-job deadline/tardiness/worst-reload fields to
  // mean_stats, and emit a schema-v3 top-level "rt" block (deadline-miss
  // rate, tardiness percentiles, worst-case-observed reload per experiment).
  // Off by default so non-rt documents stay byte-identical. Spec keys: rt=1,
  // deadline-mix=soft|hard|mixed|tight (colors=N selects the partitioned
  // cache substrate independently).
  bool rt = false;
  std::string deadline_mix = "soft";

  // Total cells at the minimum replication count (scheduling lower bound).
  size_t MinCells() const;
};

// Preset grids. Each uses PaperMachineConfig() + DefaultProfiles().
SweepSpec Fig5Spec();    // 4 policies x 6 mixes, adaptive reps 3-5, seed 1000
SweepSpec Table3Spec();  // dynamic family x mix 5, adaptive reps 3-5, seed 555
SweepSpec FutureSpec();  // 4 policies x 6 mixes, adaptive reps 3-4, seed 8000
SweepSpec SmokeSpec();   // 3 policies x mixes {1,5}, fixed 2 reps, seed 1000
// Equipartition + the MQMS steal family on a hierarchical machine (tiers 1-3
// all distinct), mixes {1,5}, fixed 2 reps, seed 1000, 50ms balance ticks.
// When the grid contains an mq-* policy, per-job mean_stats gain a
// "steals":{"same_cluster","same_node","cross_node"} block and a
// "balance_migrations" count; non-mq documents are byte-identical to before.
SweepSpec MqSpec();
// Real-time preset: dyn-aff vs the static rt policies on an 8-color
// partitioned machine, mixes {1,5}, fixed 2 reps, seed 1000, soft deadline
// mix. The document is schema v3 with the "rt" block described above.
SweepSpec RtSpec();

// Parses a sweep spec string: either a preset name ("fig5", "table3",
// "future", "smoke", "mq", "rt"), a "key=value;key=value" list, or a preset
// followed by overrides ("fig5;reps=2;procs=8"). Keys: policies
// (comma-separated CLI names), mixes (comma-separated Table 2 numbers), reps
// (N fixed or MIN-MAX adaptive), precision, seed, procs, speed, cache,
// topology, observability (0/1 — schema-v3 affinity-efficiency block), steal
// (comma-separated steal radii — nosteal/sibling/cluster/numa — sugar that
// replaces the policy list with the matching mq-* kinds), balance-interval
// (milliseconds between load-balance ticks, overriding the policy default),
// colors (N >= 1 selects the partitioned cache model with N page colors; 0
// restores the footprint model), rt (0/1 — deadline accounting + "rt"
// block), deadline-mix (soft|hard|mixed|tight).
// Returns false and sets `error` on malformed input.
bool ParseSweepSpec(const std::string& text, SweepSpec* spec, std::string* error);

// One executed cell: a whole simulation at a derived seed.
struct CellResult {
  size_t replication = 0;
  uint64_t seed = 0;
  RunResult run;
};

// One (policy, mix) experiment: the serial-identical replicated aggregate
// plus the per-cell rows it was folded from.
struct ExperimentResult {
  PolicyKind policy = PolicyKind::kDynamic;
  WorkloadMix mix;
  ReplicatedResult replicated;
  std::vector<CellResult> cells;  // replication order
};

struct SweepResult {
  SweepSpec spec;
  std::vector<ExperimentResult> experiments;  // mix-major, then policy
  // Wall-clock of the Run() call. Informational only — never serialized
  // (ToJson output must not depend on the executing machine).
  double wall_seconds = 0.0;

  // Locates the experiment for (policy, mix number); nullptr if absent.
  const ExperimentResult* Find(PolicyKind policy, int mix_number) const;

  std::string ToJson() const;
  bool WriteJsonFile(const std::string& path) const;
};

}  // namespace affsched

#endif  // SRC_RUNNER_SWEEP_H_
