// Deterministic per-cell seed derivation for sweep grids.
//
// Every cell of an experiment grid gets its engine seed from a SplitMix64
// hash of (root seed, cell coordinates), never from "whichever seed the
// previous run left behind". Two consequences the runner depends on:
//
//   * results are bit-identical regardless of worker count or the order in
//     which a thread pool happens to execute cells;
//   * adding a policy or widening the replication axis never shifts the
//     seeds of existing cells, so baselines stay comparable across grids.
//
// The policy is deliberately NOT a coordinate: the paper compares policies
// under common random numbers (the same workload draws), so every policy
// sees the same seed for a given (mix, replication) cell.

#ifndef SRC_RUNNER_CELL_SEED_H_
#define SRC_RUNNER_CELL_SEED_H_

#include <cstddef>
#include <cstdint>
#include <initializer_list>
#include <string>

namespace affsched {

// Hashes the root seed and an ordered coordinate list into a seed. The
// result is sensitive to coordinate order and count ((1,2) != (2,1) and
// (1) != (1,0)).
uint64_t DeriveSeed(uint64_t root_seed, std::initializer_list<uint64_t> coordinates);

// The sweep grid's cell-seed convention: coordinates are (mix number,
// replication index) — policy excluded, see above. Checks the CRN and
// decimal round-trip invariants on every derivation.
uint64_t DeriveCellSeed(uint64_t root_seed, int mix_number, std::size_t replication);

// The open-system sweep's cell-seed convention: coordinates are (arrival
// process index, offered load in per-mille, replication). The policy is
// again excluded — every policy sees the same arrival stream and workload
// draws for a given (arrival process, rho, rep) cell — and rho enters as an
// exact integer (per-mille) so the coordinate never depends on float
// formatting. A distinguishing tag keeps the open grid's seed space disjoint
// from DeriveCellSeed's even where coordinates coincide numerically.
uint64_t DeriveOpenCellSeed(uint64_t root_seed, std::size_t arrival_index, int rho_permille,
                            std::size_t replication);

// The textual form seeds take in sweep JSON: unquoted decimal, because
// 64-bit values round-trip exactly through decimal text but not through
// double (anything above 2^53 would be silently rounded).
std::string SeedToDecimal(uint64_t seed);
uint64_t SeedFromDecimal(const std::string& text);

}  // namespace affsched

#endif  // SRC_RUNNER_CELL_SEED_H_
