#include "src/runner/heartbeat.h"

#include "src/telemetry/json.h"

namespace affsched {

HeartbeatWriter::HeartbeatWriter(const std::string& path) {
  if (path == "-") {
    out_ = stderr;
    owned_ = false;
    return;
  }
  out_ = std::fopen(path.c_str(), "w");
  owned_ = true;
}

HeartbeatWriter::~HeartbeatWriter() {
  if (out_ != nullptr && owned_) {
    std::fclose(out_);
  }
}

void HeartbeatWriter::WriteLine(const std::string& line) {
  if (out_ == nullptr) {
    return;
  }
  std::fputs(line.c_str(), out_);
  std::fputc('\n', out_);
  std::fflush(out_);
}

void HeartbeatWriter::Start(const std::string& name, size_t cells_min) {
  std::string line = "{\"kind\":\"start\",\"seq\":" + std::to_string(seq_++);
  line += ",\"name\":\"" + JsonEscape(name) + "\"";
  line += ",\"cells_min\":" + std::to_string(cells_min) + "}";
  WriteLine(line);
}

void HeartbeatWriter::OnRound(const SweepRoundStats& stats) {
  const double per_cell =
      stats.round_cells > 0 ? stats.round_wall_s / static_cast<double>(stats.round_cells) : 0.0;
  const double events_per_s =
      stats.round_wall_s > 0.0 ? static_cast<double>(stats.round_events) / stats.round_wall_s
                               : 0.0;
  // Extrapolate from overall throughput; `scheduled` is a lower bound on the
  // final cell count while adaptive replication is still adding work, so the
  // ETA is a lower bound too.
  const size_t remaining = stats.scheduled > stats.completed ? stats.scheduled - stats.completed : 0;
  const double eta_s = stats.completed > 0
                           ? static_cast<double>(remaining) * stats.total_wall_s /
                                 static_cast<double>(stats.completed)
                           : 0.0;
  std::string line = "{\"kind\":\"round\",\"seq\":" + std::to_string(seq_++);
  line += ",\"round\":" + std::to_string(stats.round);
  line += ",\"completed\":" + std::to_string(stats.completed);
  line += ",\"scheduled\":" + std::to_string(stats.scheduled);
  line += ",\"round_cells\":" + std::to_string(stats.round_cells);
  line += ",\"round_wall_s\":" + JsonNumber(stats.round_wall_s);
  line += ",\"wall_s\":" + JsonNumber(stats.total_wall_s);
  line += ",\"cell_wall_s\":" + JsonNumber(per_cell);
  line += ",\"events_per_s\":" + JsonNumber(events_per_s);
  line += ",\"deadline_misses\":" + std::to_string(stats.round_deadline_misses);
  line += ",\"eta_s\":" + JsonNumber(eta_s) + "}";
  WriteLine(line);
}

void HeartbeatWriter::OnProgress(size_t completed, size_t total) {
  std::string line = "{\"kind\":\"progress\",\"seq\":" + std::to_string(seq_++);
  line += ",\"completed\":" + std::to_string(completed);
  line += ",\"total\":" + std::to_string(total) + "}";
  WriteLine(line);
}

void HeartbeatWriter::Custom(const std::string& kind, const std::string& members_json) {
  std::string line = "{\"kind\":\"" + JsonEscape(kind) + "\",\"seq\":" + std::to_string(seq_++);
  if (!members_json.empty()) {
    line += "," + members_json;
  }
  line += "}";
  WriteLine(line);
}

void HeartbeatWriter::Finish(size_t completed, double wall_s) {
  std::string line = "{\"kind\":\"done\",\"seq\":" + std::to_string(seq_++);
  line += ",\"completed\":" + std::to_string(completed);
  line += ",\"wall_s\":" + JsonNumber(wall_s) + "}";
  WriteLine(line);
}

}  // namespace affsched
