// SweepRunner: executes a SweepSpec's grid on a WorkerPool.
//
// Scheduling model: the grid expands into (policy, mix) experiments whose
// replications are the unit of parallelism. Replications are scheduled in
// rounds — every experiment's next needed replication is submitted to the
// pool, the round drains, results fold in (mix-major, policy, replication)
// order, and experiments whose confidence bound is unmet (and cap unreached)
// get one more replication next round. This reproduces the serial
// RunReplicated stopping rule exactly, so the replication counts, the
// aggregates, and the serialized JSON are bit-identical at any worker count.
//
// Thread-safety of the simulation stack (audited for this runner; guarded by
// the TSan CI job): an Engine owns every piece of mutable state it touches —
// event queue, machine, caches, policy, RNG, per-job accounting — and the
// library's only statics are immutable tables and the lazily-initialized log
// level (thread-safe magic static, read-only afterwards). AppProfile's
// build_graph closures capture parameters by value. Concurrent engines
// therefore share nothing, and cells need no locking.

#ifndef SRC_RUNNER_RUNNER_H_
#define SRC_RUNNER_RUNNER_H_

#include <functional>

#include "src/runner/heartbeat.h"
#include "src/runner/sweep.h"

namespace affsched {

// One cell's identity in the grid, as seen by the cell-level hooks below.
// The seed is the DeriveCellSeed value — policy-independent (CRN), so two
// refs differing only in policy carry the same seed by design.
struct SweepCellRef {
  PolicyKind policy = PolicyKind::kDynamic;
  int mix_number = 0;      // Table 2 workload number
  size_t mix_index = 0;    // position in SweepSpec::mixes
  size_t replication = 0;
  uint64_t seed = 0;
};

struct SweepRunnerOptions {
  // Worker threads; 0 means WorkerPool::DefaultThreadCount().
  size_t jobs = 0;
  // Keep per-cell rows in the result (and its JSON). Aggregates are always
  // kept.
  bool record_cells = true;
  // Called on the orchestration thread after each round with (cells
  // completed, cells currently known to be needed). Totals can grow between
  // calls as adaptive replication schedules more work.
  std::function<void(size_t completed, size_t scheduled)> progress;
  // Richer per-round statistics (wall times, simulation events) for live
  // observability, invoked on the orchestration thread after each round, just
  // before `progress`. Typically bound to HeartbeatWriter::OnRound.
  std::function<void(const SweepRoundStats&)> round_stats;
  // Replaces the per-cell simulation (testing/instrumentation). Defaults to
  // measure's RunOnce. Must be thread-safe.
  std::function<RunResult(const SweepCellRef& ref, const MachineConfig& machine,
                          PolicyKind policy, const std::vector<AppProfile>& jobs, uint64_t seed,
                          const EngineOptions& options)>
      run_cell;
  // Cache probe seam (the serve layer's content-addressed result cache).
  // Called on the orchestration thread for every cell of a round before the
  // round executes; returning true (and filling `out`) satisfies the cell
  // without simulating it. Because results are deterministic functions of
  // the cell identity, substituting a cached result cannot change the fold
  // or the stopping rule — only skip work.
  std::function<bool(const SweepCellRef& ref, RunResult* out)> probe_cell;
  // Checkpoint seam: called on the WORKER thread immediately after a cell is
  // simulated (never for probe hits), so completed cells can persist before
  // the sweep finishes — a killed sweep resumes from them. Must be
  // thread-safe.
  std::function<void(const SweepCellRef& ref, const RunResult& result)> store_cell;
  // Streaming seam: called on the orchestration thread in deterministic fold
  // order as each cell's result folds in; `from_cache` distinguishes probe
  // hits from fresh simulations.
  std::function<void(const SweepCellRef& ref, const RunResult& result, bool from_cache)> on_cell;
};

class SweepRunner {
 public:
  explicit SweepRunner(const SweepRunnerOptions& options = {});

  // Executes the grid. If a cell throws, every in-flight cell completes, the
  // pool shuts down cleanly, and the first (lowest-indexed) exception is
  // rethrown.
  SweepResult Run(const SweepSpec& spec) const;

 private:
  SweepRunnerOptions options_;
};

}  // namespace affsched

#endif  // SRC_RUNNER_RUNNER_H_
