#include "src/runner/worker_pool.h"

#include <utility>

namespace affsched {

WorkerPool::WorkerPool(size_t num_threads) {
  const size_t n = num_threads == 0 ? 1 : num_threads;
  threads_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : threads_) {
    t.join();
  }
}

std::future<void> WorkerPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(packaged));
  }
  cv_.notify_one();
  return future;
}

void WorkerPool::ParallelFor(size_t count, const std::function<void(size_t)>& body) {
  std::vector<std::future<void>> futures;
  futures.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    futures.push_back(Submit([&body, i] { body(i); }));
  }
  std::exception_ptr first_error;
  for (std::future<void>& future : futures) {
    try {
      future.get();
    } catch (...) {
      if (first_error == nullptr) {
        first_error = std::current_exception();
      }
    }
  }
  if (first_error != nullptr) {
    std::rethrow_exception(first_error);
  }
}

size_t WorkerPool::DefaultThreadCount() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<size_t>(hw);
}

void WorkerPool::WorkerMain() {
  while (true) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) {
        return;  // stopping_ and nothing left to drain
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();  // a throwing task lands in its future, not on this thread
  }
}

}  // namespace affsched
