#include "src/runner/sweep.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include <algorithm>

#include "src/apps/apps.h"
#include "src/common/check.h"
#include "src/common/time.h"
#include "src/rt/deadline_mix.h"
#include "src/runner/cell_seed.h"
#include "src/telemetry/json.h"

namespace affsched {

size_t SweepSpec::MinCells() const {
  return policies.size() * mixes.size() * replication.min_replications;
}

namespace {

SweepSpec BaseSpec() {
  SweepSpec spec;
  spec.machine = PaperMachineConfig();
  spec.apps = DefaultProfiles();
  return spec;
}

std::vector<PolicyKind> EquiPlusDynamicFamily() {
  std::vector<PolicyKind> policies = {PolicyKind::kEquipartition};
  for (PolicyKind kind : DynamicFamily()) {
    policies.push_back(kind);
  }
  return policies;
}

std::vector<WorkloadMix> AllMixes() {
  const auto mixes = PaperMixes();
  return std::vector<WorkloadMix>(mixes.begin(), mixes.end());
}

std::vector<std::string> SplitOn(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::string part;
  std::istringstream in(text);
  while (std::getline(in, part, sep)) {
    parts.push_back(part);
  }
  return parts;
}

}  // namespace

SweepSpec Fig5Spec() {
  SweepSpec spec = BaseSpec();
  spec.name = "fig5";
  spec.policies = EquiPlusDynamicFamily();
  spec.mixes = AllMixes();
  spec.replication.min_replications = 3;
  spec.replication.max_replications = 5;
  spec.root_seed = 1000;
  return spec;
}

SweepSpec Table3Spec() {
  SweepSpec spec = BaseSpec();
  spec.name = "table3";
  spec.policies = DynamicFamily();
  spec.mixes = {PaperMixes()[4]};  // workload #5: 1 MATRIX + 1 GRAVITY
  spec.replication.min_replications = 3;
  spec.replication.max_replications = 5;
  spec.root_seed = 555;
  return spec;
}

SweepSpec FutureSpec() {
  SweepSpec spec = BaseSpec();
  spec.name = "future";
  spec.policies = EquiPlusDynamicFamily();
  spec.mixes = AllMixes();
  spec.replication.min_replications = 3;
  spec.replication.max_replications = 4;
  spec.root_seed = 8000;
  return spec;
}

SweepSpec SmokeSpec() {
  SweepSpec spec = BaseSpec();
  spec.name = "smoke";
  spec.policies = {PolicyKind::kEquipartition, PolicyKind::kDynamic, PolicyKind::kDynAff};
  spec.mixes = {PaperMixes()[0], PaperMixes()[4]};
  spec.replication.min_replications = 2;
  spec.replication.max_replications = 2;
  spec.root_seed = 1000;
  return spec;
}

SweepSpec MqSpec() {
  SweepSpec spec = BaseSpec();
  spec.name = "mq";
  spec.policies = {PolicyKind::kEquipartition};
  for (PolicyKind kind : MqPolicyFamily()) {
    spec.policies.push_back(kind);
  }
  spec.mixes = {PaperMixes()[0], PaperMixes()[4]};
  spec.replication.min_replications = 2;
  spec.replication.max_replications = 2;
  spec.root_seed = 1000;
  // 16 procs as 4-core clusters, 2 clusters per node: distance tiers 1, 2
  // and 3 are all distinct, so every steal radius behaves differently.
  std::string topo_error;
  AFF_CHECK_MSG(ParseTopologySpec("numa-4x8,cores-per-cluster=4,clusters-per-node=2",
                                  &spec.machine.topology, &topo_error),
                topo_error.c_str());
  spec.engine.balance_interval = Milliseconds(50);
  return spec;
}

SweepSpec RtSpec() {
  SweepSpec spec = BaseSpec();
  spec.name = "rt";
  spec.policies = {PolicyKind::kDynAff, PolicyKind::kRtStaticAffinity, PolicyKind::kRtColorIso};
  spec.mixes = {PaperMixes()[0], PaperMixes()[4]};
  spec.replication.min_replications = 2;
  spec.replication.max_replications = 2;
  spec.root_seed = 1000;
  spec.rt = true;
  spec.deadline_mix = "soft";
  spec.machine.cache_model = CacheModelKind::kPartitioned;
  spec.machine.num_colors = 8;
  return spec;
}

bool ParseSweepSpec(const std::string& text, SweepSpec* spec, std::string* error) {
  if (text.empty()) {
    *error = "empty sweep spec";
    return false;
  }
  const std::vector<std::string> tokens = SplitOn(text, ';');
  size_t first_override = 0;
  if (tokens[0].find('=') == std::string::npos) {
    const std::string& preset = tokens[0];
    if (preset == "fig5") {
      *spec = Fig5Spec();
    } else if (preset == "table3") {
      *spec = Table3Spec();
    } else if (preset == "future") {
      *spec = FutureSpec();
    } else if (preset == "smoke") {
      *spec = SmokeSpec();
    } else if (preset == "mq") {
      *spec = MqSpec();
    } else if (preset == "rt") {
      *spec = RtSpec();
    } else {
      *error = "unknown sweep preset '" + preset + "'";
      return false;
    }
    first_override = 1;
  } else {
    *spec = Fig5Spec();  // custom specs start from the full grid
    spec->name = "custom";
  }
  if (first_override < tokens.size()) {
    spec->name = text;  // overrides applied: record full provenance
  }

  for (size_t i = first_override; i < tokens.size(); ++i) {
    const std::string& token = tokens[i];
    if (token.empty()) {
      continue;
    }
    const size_t eq = token.find('=');
    if (eq == std::string::npos) {
      *error = "expected key=value, got '" + token + "'";
      return false;
    }
    const std::string key = token.substr(0, eq);
    const std::string value = token.substr(eq + 1);
    if (key == "policies") {
      spec->policies.clear();
      for (const std::string& name : SplitOn(value, ',')) {
        PolicyKind kind;
        if (!PolicyKindFromName(name, &kind)) {
          *error = "unknown policy '" + name + "'";
          return false;
        }
        spec->policies.push_back(kind);
      }
    } else if (key == "mixes") {
      spec->mixes.clear();
      for (const std::string& number : SplitOn(value, ',')) {
        const int n = std::atoi(number.c_str());
        if (n < 1 || n > 6) {
          *error = "mix number '" + number + "' out of range 1-6";
          return false;
        }
        spec->mixes.push_back(PaperMixes()[static_cast<size_t>(n - 1)]);
      }
    } else if (key == "reps") {
      const size_t dash = value.find('-');
      if (dash == std::string::npos) {
        const int n = std::atoi(value.c_str());
        if (n < 1) {
          *error = "reps must be >= 1";
          return false;
        }
        spec->replication.min_replications = static_cast<size_t>(n);
        spec->replication.max_replications = static_cast<size_t>(n);
      } else {
        const int lo = std::atoi(value.substr(0, dash).c_str());
        const int hi = std::atoi(value.substr(dash + 1).c_str());
        if (lo < 1 || hi < lo) {
          *error = "bad reps range '" + value + "'";
          return false;
        }
        spec->replication.min_replications = static_cast<size_t>(lo);
        spec->replication.max_replications = static_cast<size_t>(hi);
      }
    } else if (key == "precision") {
      spec->replication.relative_precision = std::atof(value.c_str());
    } else if (key == "seed") {
      spec->root_seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "procs") {
      const int n = std::atoi(value.c_str());
      if (n < 1) {
        *error = "procs must be >= 1";
        return false;
      }
      spec->machine.num_processors = static_cast<size_t>(n);
    } else if (key == "speed") {
      spec->machine.processor_speed = std::atof(value.c_str());
    } else if (key == "cache") {
      spec->machine.cache_size_factor = std::atof(value.c_str());
    } else if (key == "observability") {
      if (value == "1" || value == "true" || value == "on") {
        spec->observability = true;
      } else if (value == "0" || value == "false" || value == "off") {
        spec->observability = false;
      } else {
        *error = "observability must be 0 or 1, got '" + value + "'";
        return false;
      }
    } else if (key == "steal") {
      // steal=nosteal,cluster,... — sugar for the multi-queue policy family:
      // replaces the policy list with the mq-* kind for each steal radius.
      spec->policies.clear();
      for (const std::string& name : SplitOn(value, ',')) {
        PolicyKind kind;
        if (!PolicyKindFromStealName(name, &kind)) {
          *error = "unknown steal policy '" + name + "'";
          return false;
        }
        spec->policies.push_back(kind);
      }
    } else if (key == "balance-interval" || key == "balance_interval") {
      const double ms = std::atof(value.c_str());
      if (ms < 0) {
        *error = "balance interval must be >= 0 ms";
        return false;
      }
      spec->engine.balance_interval = Milliseconds(ms);
    } else if (key == "colors") {
      const int n = std::atoi(value.c_str());
      if (n < 0 || n > 64) {
        *error = "colors must be in 0..64 (0 = footprint model)";
        return false;
      }
      spec->machine.num_colors = static_cast<size_t>(n);
      spec->machine.cache_model =
          n > 0 ? CacheModelKind::kPartitioned : CacheModelKind::kFootprint;
    } else if (key == "rt") {
      if (value == "1" || value == "true" || value == "on") {
        spec->rt = true;
      } else if (value == "0" || value == "false" || value == "off") {
        spec->rt = false;
      } else {
        *error = "rt must be 0 or 1, got '" + value + "'";
        return false;
      }
    } else if (key == "deadline-mix" || key == "deadline_mix") {
      if (!IsDeadlineMix(value)) {
        *error = "unknown deadline mix '" + value + "' (expected soft|hard|mixed|tight)";
        return false;
      }
      spec->deadline_mix = value;
    } else if (key == "topology") {
      // topology=preset or topology=preset,key=value,... (comma-separated;
      // see src/topology). Cell seeds do not depend on the topology, so
      // hierarchical cells share common random numbers with flat ones.
      if (!ParseTopologySpec(value, &spec->machine.topology, error)) {
        return false;
      }
    } else {
      *error = "unknown sweep spec key '" + key + "'";
      return false;
    }
  }
  if (spec->policies.empty() || spec->mixes.empty()) {
    *error = "sweep spec needs at least one policy and one mix";
    return false;
  }
  const std::string machine_problem = spec->machine.Validate();
  if (!machine_problem.empty()) {
    *error = machine_problem;
    return false;
  }
  return true;
}

const ExperimentResult* SweepResult::Find(PolicyKind policy, int mix_number) const {
  for (const ExperimentResult& experiment : experiments) {
    if (experiment.policy == policy && experiment.mix.number == mix_number) {
      return &experiment;
    }
  }
  return nullptr;
}

namespace {

// The per-tier blocks are emitted only for hierarchical topologies, and the
// steal blocks only for grids containing a multi-queue policy, so the
// flat-machine JSON stays byte-identical to the pre-topology schema (pinned
// by tests/golden/).
std::string StatsJson(const JobStats& stats, bool tiered, bool mq, bool rt) {
  std::ostringstream o;
  o << "{\"useful_work_s\":" << JsonNumber(stats.useful_work_s)
    << ",\"reload_stall_s\":" << JsonNumber(stats.reload_stall_s)
    << ",\"steady_stall_s\":" << JsonNumber(stats.steady_stall_s)
    << ",\"switch_s\":" << JsonNumber(stats.switch_s)
    << ",\"waste_s\":" << JsonNumber(stats.waste_s)
    << ",\"alloc_integral_s\":" << JsonNumber(stats.alloc_integral_s)
    << ",\"reallocations\":" << stats.reallocations
    << ",\"affinity_dispatches\":" << stats.affinity_dispatches
    << ",\"affinity_fraction\":" << JsonNumber(stats.AffinityFraction())
    << ",\"realloc_interval_s\":" << JsonNumber(stats.ReallocationIntervalSeconds())
    << ",\"avg_alloc\":" << JsonNumber(stats.AverageAllocation());
  if (tiered) {
    o << ",\"migrations\":{\"same_core\":" << stats.migrations_same_core
      << ",\"same_cluster\":" << stats.migrations_same_cluster
      << ",\"same_node\":" << stats.migrations_same_node
      << ",\"cross_node\":" << stats.migrations_cross_node << "}"
      << ",\"reload_llc_s\":" << JsonNumber(stats.reload_llc_s)
      << ",\"reload_remote_s\":" << JsonNumber(stats.reload_remote_s);
  }
  if (mq) {
    o << ",\"steals\":{\"same_cluster\":" << stats.steals_same_cluster
      << ",\"same_node\":" << stats.steals_same_node
      << ",\"cross_node\":" << stats.steals_cross_node << "}"
      << ",\"balance_migrations\":" << stats.balance_migrations;
  }
  if (rt) {
    o << ",\"deadline_misses\":" << stats.deadline_misses
      << ",\"tardiness_s\":" << JsonNumber(stats.tardiness_s)
      << ",\"worst_reload_s\":" << JsonNumber(stats.worst_reload_s);
  }
  o << "}";
  return o.str();
}

}  // namespace

std::string SweepResult::ToJson() const {
  std::ostringstream o;
  // schema_version 3 = 1 + the opt-in "observability" and/or "rt" blocks; the
  // default document is byte-identical to schema 1 so golden baselines stay
  // pinned.
  o << "{\"schema_version\":" << ((spec.observability || spec.rt) ? 3 : 1)
    << ",\"tool\":\"sweep_runner\"";

  o << ",\"spec\":{\"name\":\"" << JsonEscape(spec.name) << "\""
    << ",\"root_seed\":" << spec.root_seed << ",\"machine\":{\"procs\":"
    << spec.machine.num_processors << ",\"speed\":" << JsonNumber(spec.machine.processor_speed)
    << ",\"cache\":" << JsonNumber(spec.machine.cache_size_factor);
  if (spec.machine.cache_model == CacheModelKind::kPartitioned) {
    o << ",\"colors\":" << spec.machine.num_colors;
  }
  if (!spec.machine.topology.IsFlat()) {
    o << ",\"topology\":\"" << JsonEscape(spec.machine.topology.ToSpecString()) << "\"";
  }
  o << "}";
  o << ",\"policies\":[";
  for (size_t i = 0; i < spec.policies.size(); ++i) {
    o << (i > 0 ? "," : "") << "\"" << PolicyKindCliName(spec.policies[i]) << "\"";
  }
  o << "],\"mixes\":[";
  for (size_t i = 0; i < spec.mixes.size(); ++i) {
    o << (i > 0 ? "," : "") << spec.mixes[i].number;
  }
  o << "],\"replications\":{\"min\":" << spec.replication.min_replications
    << ",\"max\":" << spec.replication.max_replications
    << ",\"precision\":" << JsonNumber(spec.replication.relative_precision)
    << ",\"confidence\":" << JsonNumber(spec.replication.confidence) << "}";
  if (spec.rt) {
    o << ",\"rt\":true,\"deadline_mix\":\"" << JsonEscape(spec.deadline_mix) << "\"";
  }
  o << "}";

  const bool tiered = !spec.machine.topology.IsFlat();
  bool mq = false;
  for (PolicyKind policy : spec.policies) {
    mq = mq || IsMqPolicy(policy);
  }
  o << ",\"experiments\":[";
  for (size_t e = 0; e < experiments.size(); ++e) {
    const ExperimentResult& experiment = experiments[e];
    const ReplicatedResult& rep = experiment.replicated;
    o << (e > 0 ? "," : "") << "{\"policy\":\"" << PolicyKindCliName(experiment.policy) << "\""
      << ",\"mix\":" << experiment.mix.number << ",\"replications\":" << rep.replications;
    o << ",\"jobs\":[";
    for (size_t j = 0; j < rep.app.size(); ++j) {
      o << (j > 0 ? "," : "") << "{\"index\":" << j << ",\"app\":\"" << JsonEscape(rep.app[j])
        << "\",\"mean_response_s\":" << JsonNumber(rep.MeanResponse(j)) << ",\"ci_half_width_s\":"
        << JsonNumber(rep.response[j].ConfidenceHalfWidth(spec.replication.confidence))
        << ",\"mean_stats\":" << StatsJson(rep.mean_stats[j], tiered, mq, spec.rt) << "}";
    }
    o << "],\"cells\":[";
    for (size_t c = 0; c < experiment.cells.size(); ++c) {
      const CellResult& cell = experiment.cells[c];
      o << (c > 0 ? "," : "") << "{\"rep\":" << cell.replication
        << ",\"seed\":" << SeedToDecimal(cell.seed) << ",\"makespan_s\":" << JsonNumber(ToSeconds(cell.run.makespan)) << ",\"response_s\":[";
      for (size_t j = 0; j < cell.run.jobs.size(); ++j) {
        o << (j > 0 ? "," : "") << JsonNumber(cell.run.jobs[j].stats.ResponseSeconds());
      }
      o << "]}";
    }
    o << "]}";
  }
  o << "]";

  if (spec.observability) {
    // Affinity efficiency per experiment, derived from the replicated mean
    // stats: how much of the consumed machine time went to rebuilding cache
    // context, how often dispatches landed on it, and where migrations went.
    o << ",\"observability\":{\"experiments\":[";
    for (size_t e = 0; e < experiments.size(); ++e) {
      const ExperimentResult& experiment = experiments[e];
      double useful = 0, reload = 0, steady = 0, switching = 0;
      uint64_t dispatches = 0, affine = 0;
      uint64_t mig_core = 0, mig_cluster = 0, mig_node = 0, mig_cross = 0;
      for (const JobStats& stats : experiment.replicated.mean_stats) {
        useful += stats.useful_work_s;
        reload += stats.reload_stall_s;
        steady += stats.steady_stall_s;
        switching += stats.switch_s;
        dispatches += stats.reallocations;
        affine += stats.affinity_dispatches;
        mig_core += stats.migrations_same_core;
        mig_cluster += stats.migrations_same_cluster;
        mig_node += stats.migrations_same_node;
        mig_cross += stats.migrations_cross_node;
      }
      const double busy = useful + reload + steady + switching;
      o << (e > 0 ? "," : "") << "{\"policy\":\"" << PolicyKindCliName(experiment.policy) << "\""
        << ",\"mix\":" << experiment.mix.number
        << ",\"reload_transient_fraction\":" << JsonNumber(busy > 0 ? reload / busy : 0.0)
        << ",\"affine_fraction\":"
        << JsonNumber(dispatches > 0
                          ? static_cast<double>(affine) / static_cast<double>(dispatches)
                          : 0.0)
        << ",\"migrations\":{\"same_core\":" << mig_core
        << ",\"same_cluster\":" << mig_cluster << ",\"same_node\":" << mig_node
        << ",\"cross_node\":" << mig_cross << "}}";
    }
    o << "]}";
  }

  if (spec.rt) {
    // Real-time summary per experiment, derived from the recorded cells (or
    // from the replicated means when cells were not recorded): deadline-miss
    // rate over all (job, replication) completions, mean and p99 tardiness,
    // and the worst-case-observed reload across the whole experiment.
    o << ",\"rt\":{\"deadline_mix\":\"" << JsonEscape(spec.deadline_mix)
      << "\",\"experiments\":[";
    for (size_t e = 0; e < experiments.size(); ++e) {
      const ExperimentResult& experiment = experiments[e];
      uint64_t misses = 0;
      uint64_t completions = 0;
      double worst_reload = 0.0;
      std::vector<double> tardiness;
      if (!experiment.cells.empty()) {
        for (const CellResult& cell : experiment.cells) {
          for (const JobResult& job : cell.run.jobs) {
            misses += job.stats.deadline_misses;
            ++completions;
            tardiness.push_back(job.stats.tardiness_s);
            worst_reload = std::max(worst_reload, job.stats.worst_reload_s);
          }
        }
      } else {
        for (const JobStats& stats : experiment.replicated.mean_stats) {
          misses += stats.deadline_misses;
          ++completions;
          tardiness.push_back(stats.tardiness_s);
          worst_reload = std::max(worst_reload, stats.worst_reload_s);
        }
      }
      std::sort(tardiness.begin(), tardiness.end());
      double sum_tardiness = 0.0;
      for (double t : tardiness) {
        sum_tardiness += t;
      }
      const double mean_tardiness =
          completions > 0 ? sum_tardiness / static_cast<double>(completions) : 0.0;
      double p99 = 0.0;
      if (!tardiness.empty()) {
        const size_t n = tardiness.size();
        size_t idx = (99 * n + 99) / 100;  // ceil(0.99 * n)
        if (idx == 0) {
          idx = 1;
        }
        p99 = tardiness[idx - 1];
      }
      o << (e > 0 ? "," : "") << "{\"policy\":\"" << PolicyKindCliName(experiment.policy)
        << "\",\"mix\":" << experiment.mix.number << ",\"completions\":" << completions
        << ",\"deadline_misses\":" << misses << ",\"deadline_miss_rate\":"
        << JsonNumber(completions > 0
                          ? static_cast<double>(misses) / static_cast<double>(completions)
                          : 0.0)
        << ",\"mean_tardiness_s\":" << JsonNumber(mean_tardiness)
        << ",\"p99_tardiness_s\":" << JsonNumber(p99)
        << ",\"worst_reload_s\":" << JsonNumber(worst_reload) << "}";
    }
    o << "]}";
  }

  // Relative response times vs Equipartition (the Figure 5 quantities) —
  // emitted when the grid includes Equipartition, so CI can gate on the
  // paper's headline ratios without recomputing them.
  bool first_ratio = true;
  std::ostringstream ratios;
  for (const WorkloadMix& mix : spec.mixes) {
    const ExperimentResult* equi = Find(PolicyKind::kEquipartition, mix.number);
    if (equi == nullptr) {
      continue;
    }
    for (PolicyKind policy : spec.policies) {
      if (policy == PolicyKind::kEquipartition) {
        continue;
      }
      const ExperimentResult* run = Find(policy, mix.number);
      if (run == nullptr) {
        continue;
      }
      for (size_t j = 0; j < run->replicated.app.size(); ++j) {
        ratios << (first_ratio ? "" : ",") << "{\"mix\":" << mix.number << ",\"policy\":\""
               << PolicyKindCliName(policy) << "\",\"job\":" << j << ",\"app\":\""
               << JsonEscape(run->replicated.app[j]) << "\",\"ratio\":"
               << JsonNumber(run->replicated.MeanResponse(j) / equi->replicated.MeanResponse(j))
               << "}";
        first_ratio = false;
      }
    }
  }
  const std::string ratio_text = ratios.str();
  if (!ratio_text.empty()) {
    o << ",\"relative_response\":[" << ratio_text << "]";
  }
  o << "}";
  return o.str();
}

bool SweepResult::WriteJsonFile(const std::string& path) const {
  std::ofstream out(path, std::ios::out | std::ios::trunc);
  if (!out.is_open()) {
    return false;
  }
  out << ToJson() << "\n";
  return out.good();
}

}  // namespace affsched
