#include "src/runner/runner.h"

#include <chrono>
#include <utility>

#include "src/common/check.h"
#include "src/rt/deadline_mix.h"
#include "src/runner/cell_seed.h"
#include "src/runner/worker_pool.h"

namespace affsched {

SweepRunner::SweepRunner(const SweepRunnerOptions& options) : options_(options) {}

namespace {

// Mutable scheduling state for one (policy, mix) experiment.
struct ExperimentState {
  size_t mix_index = 0;
  PolicyKind policy = PolicyKind::kDynamic;
  ReplicationFolder folder;
  size_t scheduled = 0;  // replications submitted so far
  bool done = false;
  std::vector<CellResult> cells;

  ExperimentState(size_t mix_index_in, PolicyKind policy_in, size_t num_jobs)
      : mix_index(mix_index_in), policy(policy_in), folder(num_jobs) {}
};

struct PendingCell {
  size_t experiment = 0;
  size_t replication = 0;
};

}  // namespace

SweepResult SweepRunner::Run(const SweepSpec& spec) const {
  AFF_CHECK_MSG(!spec.policies.empty() && !spec.mixes.empty(), "empty sweep grid");
  AFF_CHECK_MSG(spec.replication.min_replications >= 1 &&
                    spec.replication.max_replications >= spec.replication.min_replications,
                "bad replication bounds");
  const auto wall_start = std::chrono::steady_clock::now();

  auto run_cell = options_.run_cell;
  if (!run_cell) {
    run_cell = [](const SweepCellRef&, const MachineConfig& machine, PolicyKind policy,
                  const std::vector<AppProfile>& jobs, uint64_t seed,
                  const EngineOptions& engine_options) {
      return RunOnce(machine, policy, jobs, seed, engine_options);
    };
  }

  // Expand each mix's job list once; cells share it read-only.
  std::vector<std::vector<AppProfile>> mix_jobs;
  mix_jobs.reserve(spec.mixes.size());
  for (const WorkloadMix& mix : spec.mixes) {
    mix_jobs.push_back(mix.Expand(spec.apps));
    AFF_CHECK_MSG(!mix_jobs.back().empty(), "mix expands to zero jobs");
    if (spec.rt) {
      std::string mix_error;
      AFF_CHECK_MSG(ApplyDeadlineMix(spec.deadline_mix, spec.machine.num_processors,
                                     &mix_jobs.back(), &mix_error),
                    mix_error.c_str());
    }
  }

  // Mix-major, then policy — the order experiments appear in the result.
  std::vector<ExperimentState> experiments;
  experiments.reserve(spec.mixes.size() * spec.policies.size());
  for (size_t m = 0; m < spec.mixes.size(); ++m) {
    for (PolicyKind policy : spec.policies) {
      experiments.emplace_back(m, policy, mix_jobs[m].size());
    }
  }

  WorkerPool pool(options_.jobs == 0 ? WorkerPool::DefaultThreadCount() : options_.jobs);
  size_t completed_cells = 0;
  size_t round_index = 0;

  while (true) {
    // Gather this round's cells: per experiment, the replications between
    // what has been scheduled and what the stopping rule currently needs
    // (min_replications to start with, +1 per round once adaptive).
    std::vector<PendingCell> batch;
    for (size_t e = 0; e < experiments.size(); ++e) {
      ExperimentState& experiment = experiments[e];
      if (experiment.done) {
        continue;
      }
      const size_t target = experiment.scheduled < spec.replication.min_replications
                                ? spec.replication.min_replications
                                : experiment.scheduled + 1;
      for (size_t rep = experiment.scheduled; rep < target; ++rep) {
        batch.push_back(PendingCell{e, rep});
      }
      experiment.scheduled = target;
    }
    if (batch.empty()) {
      break;
    }

    // Execute the round. Cell results land in slots indexed by batch
    // position, so the fold below runs in deterministic order no matter
    // which worker finished first. The cache probe runs first, on the
    // orchestration thread: hits fill their slots directly and only the
    // misses go to the pool. Neither path can change the fold order, so
    // caching is invisible to the stopping rule and the serialized result.
    std::vector<RunResult> round(batch.size());
    std::vector<SweepCellRef> refs(batch.size());
    std::vector<char> from_cache(batch.size(), 0);
    std::vector<size_t> todo;
    todo.reserve(batch.size());
    for (size_t i = 0; i < batch.size(); ++i) {
      const PendingCell& cell = batch[i];
      const ExperimentState& experiment = experiments[cell.experiment];
      const WorkloadMix& mix = spec.mixes[experiment.mix_index];
      refs[i] = SweepCellRef{experiment.policy, mix.number, experiment.mix_index,
                             cell.replication,
                             DeriveCellSeed(spec.root_seed, mix.number, cell.replication)};
      if (options_.probe_cell && options_.probe_cell(refs[i], &round[i])) {
        from_cache[i] = 1;
      } else {
        todo.push_back(i);
      }
    }
    const auto round_start = std::chrono::steady_clock::now();
    pool.ParallelFor(todo.size(), [&](size_t k) {
      const size_t i = todo[k];
      const SweepCellRef& ref = refs[i];
      round[i] = run_cell(ref, spec.machine, ref.policy, mix_jobs[ref.mix_index], ref.seed,
                          spec.engine);
      if (options_.store_cell) {
        options_.store_cell(ref, round[i]);
      }
    });
    const double round_wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - round_start).count();
    uint64_t round_events = 0;
    uint64_t round_deadline_misses = 0;
    for (const RunResult& r : round) {
      round_events += r.events;
      for (const JobResult& job : r.jobs) {
        round_deadline_misses += job.stats.deadline_misses;
      }
    }
    ++round_index;

    // Fold sequentially; batch construction guarantees ascending replication
    // order within each experiment.
    for (size_t i = 0; i < batch.size(); ++i) {
      const PendingCell& cell = batch[i];
      ExperimentState& experiment = experiments[cell.experiment];
      experiment.folder.Fold(round[i]);
      if (options_.on_cell) {
        options_.on_cell(refs[i], round[i], from_cache[i] != 0);
      }
      if (options_.record_cells) {
        experiment.cells.push_back(
            CellResult{cell.replication, refs[i].seed, std::move(round[i])});
      }
      ++completed_cells;
    }
    for (ExperimentState& experiment : experiments) {
      if (!experiment.done && experiment.scheduled > 0 &&
          experiment.folder.replications() == experiment.scheduled) {
        experiment.done = experiment.folder.Done(spec.replication);
      }
    }
    if (options_.progress || options_.round_stats) {
      size_t known = completed_cells;
      for (const ExperimentState& experiment : experiments) {
        if (!experiment.done) {
          ++known;  // at least one more replication coming
        }
      }
      if (options_.round_stats) {
        SweepRoundStats stats;
        stats.round = round_index;
        stats.round_cells = batch.size();
        stats.completed = completed_cells;
        stats.scheduled = known;
        stats.round_wall_s = round_wall_s;
        stats.total_wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
        stats.round_events = round_events;
        stats.round_deadline_misses = round_deadline_misses;
        options_.round_stats(stats);
      }
      if (options_.progress) {
        options_.progress(completed_cells, known);
      }
    }
  }

  SweepResult result;
  result.spec = spec;
  result.experiments.reserve(experiments.size());
  for (ExperimentState& experiment : experiments) {
    ExperimentResult out;
    out.policy = experiment.policy;
    out.mix = spec.mixes[experiment.mix_index];
    out.replicated = experiment.folder.Finish();
    out.cells = std::move(experiment.cells);
    result.experiments.push_back(std::move(out));
  }
  result.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  return result;
}

}  // namespace affsched
