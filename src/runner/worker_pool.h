// A fixed-size thread pool draining one shared FIFO queue.
//
// Deliberately work-stealing-free: sweep cells are coarse (one whole
// simulation each, milliseconds to seconds), so a single mutex-protected
// queue is nowhere near contended and keeps execution order irrelevant to
// results — determinism comes from per-cell seeds, not from scheduling.
//
// Exception safety: a task that throws does not kill its worker thread or
// the pool. The exception is captured in the task's future and rethrown to
// whoever calls get(); ParallelFor waits for ALL iterations to finish before
// rethrowing the lowest-index exception, so the pool is always quiescent
// (and destructible) when the caller regains control.

#ifndef SRC_RUNNER_WORKER_POOL_H_
#define SRC_RUNNER_WORKER_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace affsched {

class WorkerPool {
 public:
  // Spawns `num_threads` workers (clamped to at least 1).
  explicit WorkerPool(size_t num_threads);

  // Completes every already-submitted task, then joins the workers.
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  size_t size() const { return threads_.size(); }

  // Enqueues a task. The future resolves when the task finishes and rethrows
  // anything the task threw.
  std::future<void> Submit(std::function<void()> task);

  // Runs body(0) ... body(count-1) on the pool and blocks until every
  // iteration has finished. If any iterations threw, rethrows the exception
  // of the lowest index (deterministic regardless of execution order).
  void ParallelFor(size_t count, const std::function<void(size_t)>& body);

  // std::thread::hardware_concurrency with a floor of 1.
  static size_t DefaultThreadCount();

 private:
  void WorkerMain();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::packaged_task<void()>> queue_;
  bool stopping_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace affsched

#endif  // SRC_RUNNER_WORKER_POOL_H_
