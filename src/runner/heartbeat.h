// Live sweep observability: a heartbeat stream for long-running sweeps.
//
// A sweep can run for minutes to hours; its deterministic JSON result only
// exists at the end. HeartbeatWriter emits one JSON line per scheduling round
// (and per lifecycle event) to a side file that `tail -f` or a dashboard can
// follow: cells completed / scheduled, wall time, per-cell wall time,
// simulation events per second, and an ETA extrapolated from throughput so
// far.
//
// Unlike every sweep *result*, heartbeat lines deliberately carry wall-clock
// readings — they describe the host run, not the simulation, and are never
// folded into deterministic outputs (golden tests never see them).

#ifndef SRC_RUNNER_HEARTBEAT_H_
#define SRC_RUNNER_HEARTBEAT_H_

#include <cstdint>
#include <cstdio>
#include <string>

namespace affsched {

// Per-round scheduling statistics, published by SweepRunner after each round
// of replications drains (see SweepRunnerOptions::round_stats).
struct SweepRoundStats {
  size_t round = 0;          // 1-based round index
  size_t round_cells = 0;    // cells executed this round
  size_t completed = 0;      // cells completed so far (all rounds)
  size_t scheduled = 0;      // cells currently known to be needed; grows as
                             // adaptive replication schedules more
  double round_wall_s = 0;   // wall time this round spent in ParallelFor
  double total_wall_s = 0;   // wall time since Run() started
  uint64_t round_events = 0; // simulation events executed this round
  // Deadline misses across this round's cells (0 outside rt sweeps) — lets a
  // dashboard watch an rt sweep's miss behaviour before the result exists.
  uint64_t round_deadline_misses = 0;
};

// Appends JSONL heartbeat records to a file (or stderr when path is "-").
// Every line is flushed immediately so the stream is live. Not thread-safe;
// SweepRunner invokes callbacks on the orchestration thread only.
class HeartbeatWriter {
 public:
  // Truncates `path` and opens it for writing; "-" means stderr. On open
  // failure ok() is false and every write is a no-op.
  explicit HeartbeatWriter(const std::string& path);
  ~HeartbeatWriter();
  HeartbeatWriter(const HeartbeatWriter&) = delete;
  HeartbeatWriter& operator=(const HeartbeatWriter&) = delete;

  bool ok() const { return out_ != nullptr; }

  // {"kind":"start","name":...,"cells_min":...} — emit once before work.
  void Start(const std::string& name, size_t cells_min);

  // {"kind":"round",...} with derived events_per_s and eta_s. Intended as
  // (or from) a SweepRunnerOptions::round_stats callback.
  void OnRound(const SweepRoundStats& stats);

  // {"kind":"progress","completed":...,"total":...} — coarse progress for
  // drivers without round structure (open-system mode counts jobs).
  void OnProgress(size_t completed, size_t total);

  // {"kind":"done","completed":...,"wall_s":...} — emit once after work.
  void Finish(size_t completed, double wall_s);

  // {"kind":"<kind>",<members>} — extension point for subsystems that reuse
  // the heartbeat stream with their own record shapes (the serve daemon
  // appends "cache" lines with hit/miss counters). `members_json` is the
  // caller's comma-joined `"key":value` list, already valid JSON.
  void Custom(const std::string& kind, const std::string& members_json);

 private:
  void WriteLine(const std::string& line);

  FILE* out_ = nullptr;
  bool owned_ = false;  // close on destruction (false for stderr)
  uint64_t seq_ = 0;    // monotonically increasing line number
};

}  // namespace affsched

#endif  // SRC_RUNNER_HEARTBEAT_H_
