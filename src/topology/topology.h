// Machine topology: the hierarchy a processor lives in.
//
// The paper's Symmetry is flat — twenty identical processors on one bus, so
// the cost of a reallocation depends only on *whether* a task moved. Every
// modern descendant is hierarchical: private per-core caches, cluster-shared
// last-level caches, NUMA nodes behind an interconnect — and the reload
// transient depends on *where* the task lands. This module describes that
// hierarchy (core -> cluster -> node -> machine) and derives the
// processor-pair distance-tier matrix the cache model, the accounting layer
// and the distance-aware policies all consult:
//
//   tier 0  same processor      private cache still warm (paper's P^A)
//   tier 1  same cluster        L1 cold, cluster LLC warm (partial reuse)
//   tier 2  same node           LLC cold, fills from local memory (P^NA)
//   tier 3  cross node          fills cross the interconnect (P^NA x remote)
//
// The `symmetry-flat` preset describes the paper's machine: one cluster, one
// node, no LLC. Running under it is byte-identical to a machine built with
// no topology at all (pinned by tests/golden/).

#ifndef SRC_TOPOLOGY_TOPOLOGY_H_
#define SRC_TOPOLOGY_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <vector>

namespace affsched {

// Number of distance tiers (same-core / same-cluster / same-node / cross-node).
inline constexpr size_t kNumDistanceTiers = 4;

// Stable lowercase identifier for each tier ("same_core", "same_cluster",
// "same_node", "cross_node"), used in JSON and metric names.
const char* DistanceTierName(size_t tier);

// A declarative topology description. Grouping is regular: processor p lives
// in cluster p / cores_per_cluster, and cluster c in node
// c / clusters_per_node; a count of 0 means "all of them share one".
struct TopologySpec {
  std::string name = "symmetry-flat";
  // Processors per cluster (0 = all processors in a single cluster).
  size_t cores_per_cluster = 0;
  // Clusters per node (0 = all clusters in a single node).
  size_t clusters_per_node = 0;
  // Capacity of the cluster-shared last-level cache (0 disables the LLC tier).
  size_t llc_kb = 0;
  // LLC line size and associativity (only meaningful when llc_kb > 0).
  size_t llc_line_bytes = 64;
  size_t llc_ways = 8;
  // Fill cost of a block found in the cluster LLC, relative to a full memory
  // miss service (an LLC hit is a fraction of a memory fetch).
  double llc_hit_factor = 0.25;
  // Cost multiplier for fills sourced from a remote node's memory.
  double remote_multiplier = 1.6;

  // One node means every cluster (or the single cluster) shares memory.
  bool SingleNode() const { return cores_per_cluster == 0 || clusters_per_node == 0; }

  // Flat = the paper's machine: no LLC tier and no remote memory, so every
  // migration costs the same and the hierarchy adds nothing.
  bool IsFlat() const { return llc_kb == 0 && SingleNode(); }

  // LLC capacity expressed in working-set blocks of `line_bytes` each (the
  // unit the footprint model tracks; the Symmetry's private caches use 16).
  double LlcCapacityBlocks(size_t line_bytes) const;

  // Canonical key=value form; ParseTopologySpec round-trips it exactly.
  std::string ToSpecString() const;

  // Returns an empty string if the spec is valid for a machine of
  // `num_processors`, else a human-readable error.
  std::string Validate(size_t num_processors) const;
};

// Presets. `symmetry-flat` is the paper's bus machine; `cmp-2x10` is a
// chip-multiprocessor (2 clusters of 10 cores, each pair sharing a 512 KB
// LLC, one memory); `numa-4x8` is a NUMA box (4 nodes of 8 cores, a 1 MB LLC
// per node, remote fills 1.6x).
TopologySpec SymmetryFlatTopology();
TopologySpec CmpTopology();
TopologySpec NumaTopology();

// All presets, in listing order.
std::vector<TopologySpec> TopologyPresets();

// Looks up a preset by name. Returns false if unknown.
bool TopologyPresetFromName(const std::string& name, TopologySpec* spec);

// Parses "preset" or "preset,key=value,..." or "key=value,...". Keys:
// name, cores-per-cluster, clusters-per-node, llc-kb, llc-line, llc-ways,
// llc-factor, remote. Overrides apply on top of the preset (default
// symmetry-flat). Returns false and sets *error on failure.
bool ParseTopologySpec(const std::string& text, TopologySpec* spec, std::string* error);

// Human-readable preset table for `simctl --list-topologies`.
std::string RenderTopologyList();

// The concrete topology of one machine: the spec instantiated over
// `num_processors` processors, with the distance-tier matrix derived.
class Topology {
 public:
  Topology(const TopologySpec& spec, size_t num_processors);

  const TopologySpec& spec() const { return spec_; }
  size_t num_processors() const { return cluster_of_.size(); }
  size_t num_clusters() const { return num_clusters_; }
  size_t num_nodes() const { return num_nodes_; }

  size_t ClusterOf(size_t proc) const;
  size_t NodeOf(size_t proc) const;

  // Distance tier between two processors (0..kNumDistanceTiers-1). Symmetric,
  // zero on the diagonal, and an ultrametric (max of any two legs bounds the
  // third), so the triangle inequality holds.
  size_t TierBetween(size_t a, size_t b) const;

 private:
  TopologySpec spec_;
  size_t num_clusters_ = 1;
  size_t num_nodes_ = 1;
  std::vector<size_t> cluster_of_;
  std::vector<size_t> node_of_;
  std::vector<size_t> tier_;  // num_processors x num_processors, row-major
};

}  // namespace affsched

#endif  // SRC_TOPOLOGY_TOPOLOGY_H_
