// HierarchicalCacheModel: the CacheModel implementation for hierarchical
// topologies.
//
// Each processor keeps its private footprint cache (the same analytic model
// the flat machine runs), but reload misses are further classified by where
// the missing blocks can be sourced:
//
//   * blocks still resident in the processor's cluster-shared LLC are LLC
//     hits — a task migrating within its cluster rebuilds its private cache
//     from the LLC at a fraction of the memory fill cost;
//   * when the task last ran on a *different node*, the blocks that miss the
//     LLC are fetched across the interconnect from the previous node's
//     memory and pay the remote multiplier;
//   * everything else fills from local memory at the flat machine's cost.
//
// The LLC itself is a FootprintCache shared by the cluster's processors
// (capacity in the same working-set block units, so a task's footprint can
// outlive its private-cache copy), and a machine-wide directory remembers
// the node each task last ran on. Both live in TopologyCacheState, owned by
// the Machine; the per-processor models hold non-owning pointers.
//
// Coherence invalidations (EjectBlocks) erode the LLC copy as well as the
// private one; thread turnover (ReplaceOwnerData) likewise releases the dead
// data at both levels. Flush only clears the private cache — it models the
// Section 4 per-processor "migrating" treatment, not a machine-wide wipe.

#ifndef SRC_TOPOLOGY_HIER_CACHE_H_
#define SRC_TOPOLOGY_HIER_CACHE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/cache/footprint.h"
#include "src/topology/topology.h"

namespace affsched {

// Shared per-machine state: one LLC per cluster (when the topology has an
// LLC tier) plus the owner -> last-node directory used to classify remote
// fills.
class TopologyCacheState {
 public:
  static constexpr size_t kNoNode = static_cast<size_t>(-1);

  // `llc_capacity_blocks` <= 0 disables the LLC tier (pure-NUMA topologies
  // still track last nodes).
  TopologyCacheState(const Topology& topology, double llc_capacity_blocks, size_t llc_ways);

  // The cluster's shared LLC, or nullptr when the topology has none.
  FootprintCache* llc(size_t cluster);

  size_t LastNode(CacheOwner owner) const;
  void SetLastNode(CacheOwner owner, size_t node);
  void Forget(CacheOwner owner);

 private:
  std::vector<std::unique_ptr<FootprintCache>> llcs_;
  std::unordered_map<CacheOwner, size_t> last_node_;
};

class HierarchicalCacheModel final : public CacheModel {
 public:
  // `state` outlives the model (both are owned by the Machine).
  HierarchicalCacheModel(double l1_capacity_blocks, size_t l1_ways, const Topology& topology,
                         TopologyCacheState* state, size_t proc);

  CacheChunkResult RunChunk(CacheOwner owner, const WorkingSetParams& ws,
                            double seconds) override;

  double Resident(CacheOwner owner) const override { return l1_.Resident(owner); }
  double Occupied() const override { return l1_.Occupied(); }
  double capacity() const override { return l1_.capacity(); }
  double MaxResident(double blocks) const override { return l1_.MaxResident(blocks); }
  void Flush() override { l1_.Flush(); }
  void EjectFraction(CacheOwner owner, double fraction) override;
  void EjectBlocks(CacheOwner owner, double blocks) override;
  void ReplaceOwnerData(CacheOwner owner, double keep_fraction) override;
  void RemoveOwner(CacheOwner owner) override;

  // The private-cache model (test hooks live there).
  FootprintCache& l1() { return l1_; }

 private:
  FootprintCache l1_;
  TopologyCacheState* state_;
  size_t cluster_;
  size_t node_;
};

}  // namespace affsched

#endif  // SRC_TOPOLOGY_HIER_CACHE_H_
