#include "src/topology/topology.h"

#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "src/common/check.h"
#include "src/common/table.h"

namespace affsched {

const char* DistanceTierName(size_t tier) {
  switch (tier) {
    case 0:
      return "same_core";
    case 1:
      return "same_cluster";
    case 2:
      return "same_node";
    case 3:
      return "cross_node";
    default:
      AFF_CHECK_MSG(false, "distance tier out of range");
      return "";
  }
}

double TopologySpec::LlcCapacityBlocks(size_t line_bytes) const {
  AFF_CHECK(line_bytes > 0);
  return static_cast<double>(llc_kb * 1024) / static_cast<double>(line_bytes);
}

namespace {

// Doubles print with enough digits that std::atof round-trips them exactly.
std::string FormatExact(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.17g", value);
  return buffer;
}

// Shortest representation for human-facing listings (1.6, not
// 1.6000000000000001).
std::string FormatShort(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%g", value);
  return buffer;
}

}  // namespace

std::string TopologySpec::ToSpecString() const {
  std::ostringstream o;
  o << "name=" << name << ",cores-per-cluster=" << cores_per_cluster
    << ",clusters-per-node=" << clusters_per_node << ",llc-kb=" << llc_kb
    << ",llc-line=" << llc_line_bytes << ",llc-ways=" << llc_ways
    << ",llc-factor=" << FormatExact(llc_hit_factor)
    << ",remote=" << FormatExact(remote_multiplier);
  return o.str();
}

std::string TopologySpec::Validate(size_t num_processors) const {
  if (num_processors == 0) {
    return "topology requires at least one processor (procs=0)";
  }
  if (llc_kb > 0) {
    if (llc_line_bytes == 0) {
      return "llc-line must be > 0 when the LLC tier is enabled (llc-kb > 0)";
    }
    if (llc_ways == 0) {
      return "llc-ways must be >= 1 when the LLC tier is enabled (llc-kb > 0)";
    }
    if (llc_kb * 1024 < llc_line_bytes) {
      return "LLC capacity is smaller than one LLC line (zero-capacity level)";
    }
  }
  if (llc_hit_factor <= 0.0 || llc_hit_factor > 1.0) {
    return "llc-factor must be in (0, 1]: an LLC hit costs a fraction of a memory fill";
  }
  if (remote_multiplier < 1.0) {
    return "remote must be >= 1: a remote fill cannot be cheaper than a local one";
  }
  return "";
}

TopologySpec SymmetryFlatTopology() { return TopologySpec{}; }

TopologySpec CmpTopology() {
  TopologySpec spec;
  spec.name = "cmp-2x10";
  spec.cores_per_cluster = 10;
  spec.clusters_per_node = 0;  // one memory: a single-socket CMP
  spec.llc_kb = 512;
  spec.llc_line_bytes = 64;
  spec.llc_ways = 8;
  spec.llc_hit_factor = 0.25;
  spec.remote_multiplier = 1.0;  // unused: no remote memory
  return spec;
}

TopologySpec NumaTopology() {
  TopologySpec spec;
  spec.name = "numa-4x8";
  spec.cores_per_cluster = 8;
  spec.clusters_per_node = 1;  // each cluster is its own node
  spec.llc_kb = 1024;
  spec.llc_line_bytes = 64;
  spec.llc_ways = 16;
  spec.llc_hit_factor = 0.25;
  spec.remote_multiplier = 1.6;
  return spec;
}

std::vector<TopologySpec> TopologyPresets() {
  return {SymmetryFlatTopology(), CmpTopology(), NumaTopology()};
}

bool TopologyPresetFromName(const std::string& name, TopologySpec* spec) {
  for (const TopologySpec& preset : TopologyPresets()) {
    if (preset.name == name) {
      *spec = preset;
      return true;
    }
  }
  return false;
}

bool ParseTopologySpec(const std::string& text, TopologySpec* spec, std::string* error) {
  if (text.empty()) {
    *error = "empty topology spec";
    return false;
  }
  std::vector<std::string> tokens;
  std::string token;
  std::istringstream in(text);
  while (std::getline(in, token, ',')) {
    tokens.push_back(token);
  }
  size_t first_override = 0;
  if (tokens[0].find('=') == std::string::npos) {
    if (!TopologyPresetFromName(tokens[0], spec)) {
      *error = "unknown topology preset '" + tokens[0] + "'";
      return false;
    }
    first_override = 1;
  } else {
    *spec = SymmetryFlatTopology();
    spec->name = "custom";
  }

  for (size_t i = first_override; i < tokens.size(); ++i) {
    if (tokens[i].empty()) {
      continue;
    }
    const size_t eq = tokens[i].find('=');
    if (eq == std::string::npos) {
      *error = "expected key=value, got '" + tokens[i] + "'";
      return false;
    }
    const std::string key = tokens[i].substr(0, eq);
    const std::string value = tokens[i].substr(eq + 1);
    if (key == "name") {
      spec->name = value;
    } else if (key == "cores-per-cluster") {
      spec->cores_per_cluster = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (key == "clusters-per-node") {
      spec->clusters_per_node = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (key == "llc-kb") {
      spec->llc_kb = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (key == "llc-line") {
      spec->llc_line_bytes = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (key == "llc-ways") {
      spec->llc_ways = static_cast<size_t>(std::atoll(value.c_str()));
    } else if (key == "llc-factor") {
      spec->llc_hit_factor = std::atof(value.c_str());
    } else if (key == "remote") {
      spec->remote_multiplier = std::atof(value.c_str());
    } else {
      *error = "unknown topology spec key '" + key + "'";
      return false;
    }
  }
  return true;
}

std::string RenderTopologyList() {
  TextTable table;
  table.SetHeader({"topology", "grouping", "cluster LLC", "remote", "tiers"});
  for (const TopologySpec& spec : TopologyPresets()) {
    std::string grouping;
    if (spec.cores_per_cluster == 0) {
      grouping = "single cluster";
    } else {
      grouping = std::to_string(spec.cores_per_cluster) + " cores/cluster";
      grouping += spec.SingleNode()
                      ? ", single node"
                      : ", " + std::to_string(spec.clusters_per_node) + " clusters/node";
    }
    const std::string llc =
        spec.llc_kb == 0 ? "none"
                         : std::to_string(spec.llc_kb) + " KB x" +
                               std::to_string(spec.llc_ways) + " (hit " +
                               FormatShort(spec.llc_hit_factor) + " fill)";
    const std::string remote =
        spec.SingleNode() ? "n/a" : FormatShort(spec.remote_multiplier) + "x";
    const std::string tiers = spec.IsFlat() ? "flat" : (spec.SingleNode() ? "0-2" : "0-3");
    table.AddRow({spec.name, grouping, llc, remote, tiers});
  }
  return table.Render() +
         "\nSelect with --topology=<name> (or topology=<name> in a sweep spec); append "
         ",key=value overrides: cores-per-cluster, clusters-per-node, llc-kb, llc-line, "
         "llc-ways, llc-factor, remote.\n";
}

Topology::Topology(const TopologySpec& spec, size_t num_processors) : spec_(spec) {
  const std::string problem = spec.Validate(num_processors);
  AFF_CHECK_MSG(problem.empty(), problem.c_str());
  cluster_of_.resize(num_processors);
  node_of_.resize(num_processors);
  for (size_t p = 0; p < num_processors; ++p) {
    const size_t cluster = spec_.cores_per_cluster == 0 ? 0 : p / spec_.cores_per_cluster;
    cluster_of_[p] = cluster;
    node_of_[p] = spec_.clusters_per_node == 0 ? 0 : cluster / spec_.clusters_per_node;
  }
  num_clusters_ = cluster_of_.back() + 1;
  num_nodes_ = node_of_.back() + 1;

  tier_.resize(num_processors * num_processors);
  for (size_t a = 0; a < num_processors; ++a) {
    for (size_t b = 0; b < num_processors; ++b) {
      size_t tier;
      if (a == b) {
        tier = 0;
      } else if (cluster_of_[a] == cluster_of_[b]) {
        tier = 1;
      } else if (node_of_[a] == node_of_[b]) {
        tier = 2;
      } else {
        tier = 3;
      }
      tier_[a * num_processors + b] = tier;
    }
  }
}

size_t Topology::ClusterOf(size_t proc) const {
  AFF_CHECK(proc < cluster_of_.size());
  return cluster_of_[proc];
}

size_t Topology::NodeOf(size_t proc) const {
  AFF_CHECK(proc < node_of_.size());
  return node_of_[proc];
}

size_t Topology::TierBetween(size_t a, size_t b) const {
  AFF_CHECK(a < cluster_of_.size() && b < cluster_of_.size());
  return tier_[a * cluster_of_.size() + b];
}

}  // namespace affsched
