#include "src/topology/hier_cache.h"

#include <algorithm>

#include "src/common/check.h"

namespace affsched {

TopologyCacheState::TopologyCacheState(const Topology& topology, double llc_capacity_blocks,
                                       size_t llc_ways) {
  if (llc_capacity_blocks > 0.0) {
    llcs_.reserve(topology.num_clusters());
    for (size_t c = 0; c < topology.num_clusters(); ++c) {
      llcs_.push_back(std::make_unique<FootprintCache>(llc_capacity_blocks, llc_ways));
    }
  }
}

FootprintCache* TopologyCacheState::llc(size_t cluster) {
  if (llcs_.empty()) {
    return nullptr;
  }
  AFF_CHECK(cluster < llcs_.size());
  return llcs_[cluster].get();
}

size_t TopologyCacheState::LastNode(CacheOwner owner) const {
  auto it = last_node_.find(owner);
  return it == last_node_.end() ? kNoNode : it->second;
}

void TopologyCacheState::SetLastNode(CacheOwner owner, size_t node) {
  last_node_[owner] = node;
}

void TopologyCacheState::Forget(CacheOwner owner) { last_node_.erase(owner); }

HierarchicalCacheModel::HierarchicalCacheModel(double l1_capacity_blocks, size_t l1_ways,
                                               const Topology& topology,
                                               TopologyCacheState* state, size_t proc)
    : l1_(l1_capacity_blocks, l1_ways),
      state_(state),
      cluster_(topology.ClusterOf(proc)),
      node_(topology.NodeOf(proc)) {
  AFF_CHECK(state_ != nullptr);
}

CacheChunkResult HierarchicalCacheModel::RunChunk(CacheOwner owner, const WorkingSetParams& ws,
                                                  double seconds) {
  CacheChunkResult result = l1_.RunChunk(owner, ws, seconds);
  FootprintCache* llc = state_->llc(cluster_);
  if (result.reload_misses > 0.0) {
    if (llc != nullptr) {
      // Blocks the cluster LLC still holds refill the private cache cheaply.
      result.reload_llc_hits = std::min(result.reload_misses, llc->Resident(owner));
    }
    const size_t prev_node = state_->LastNode(owner);
    if (prev_node != TopologyCacheState::kNoNode && prev_node != node_) {
      // The task's data still lives in the previous node's memory: whatever
      // the LLC cannot serve crosses the interconnect.
      result.reload_remote = result.reload_misses - result.reload_llc_hits;
    }
  }
  if (llc != nullptr) {
    // The same execution evolves the shared LLC footprint (larger capacity,
    // shared eviction pressure from the cluster's other tasks).
    llc->RunChunk(owner, ws, seconds);
  }
  state_->SetLastNode(owner, node_);
  return result;
}

void HierarchicalCacheModel::EjectFraction(CacheOwner owner, double fraction) {
  l1_.EjectFraction(owner, fraction);
  if (FootprintCache* llc = state_->llc(cluster_)) {
    llc->EjectFraction(owner, fraction);
  }
}

void HierarchicalCacheModel::EjectBlocks(CacheOwner owner, double blocks) {
  l1_.EjectBlocks(owner, blocks);
  if (FootprintCache* llc = state_->llc(cluster_)) {
    // An invalidation removes the line machine-wide, including the LLC copy.
    llc->EjectBlocks(owner, blocks);
  }
}

void HierarchicalCacheModel::ReplaceOwnerData(CacheOwner owner, double keep_fraction) {
  l1_.ReplaceOwnerData(owner, keep_fraction);
  if (FootprintCache* llc = state_->llc(cluster_)) {
    llc->ReplaceOwnerData(owner, keep_fraction);
  }
}

void HierarchicalCacheModel::RemoveOwner(CacheOwner owner) {
  l1_.RemoveOwner(owner);
  if (FootprintCache* llc = state_->llc(cluster_)) {
    llc->RemoveOwner(owner);
  }
  state_->Forget(owner);
}

}  // namespace affsched
