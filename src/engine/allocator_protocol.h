// AllocatorProtocol: the Section-5 job <-> allocator negotiation and the
// reallocation mechanics.
//
// Owns the request/yield protocol (RequestLoop, NotifyNewWork, yield timers
// and willing advertisement), pending-reassignment state (SetPending /
// ClearPending, applied at chunk boundaries), the kernel path-length charge
// of a reallocation (StartSwitch / OnSwitchDone), holding periods, quantum
// expiry, and job arrival/completion transitions. Placement decisions come
// from the Policy; this component realises them against the shared core
// state, calling back into the Dispatcher when a processor is ready to run.

#ifndef SRC_ENGINE_ALLOCATOR_PROTOCOL_H_
#define SRC_ENGINE_ALLOCATOR_PROTOCOL_H_

#include <map>

#include "src/engine/accounting.h"
#include "src/engine/engine_core.h"

namespace affsched {

class Dispatcher;

class AllocatorProtocol {
 public:
  AllocatorProtocol(EngineCore& core, Accounting& acct) : core_(core), acct_(acct) {}

  void Connect(Dispatcher* dispatcher) { dispatcher_ = dispatcher; }

  // Realises a policy decision: reconcile targets, then explicit assignments.
  // `site` labels the decision point in provenance records; it changes no
  // scheduling behaviour.
  void ApplyDecision(const PolicyDecision& decision,
                     DecisionSite site = DecisionSite::kUnknown);
  void Reconcile(const std::map<JobId, size_t>& targets);
  void AssignProcessor(const Assignment& assignment);

  // Ends a holding period (waste accounting) and detaches the worker.
  void ReleaseFromHolder(size_t proc);
  // Begins the reallocation path-length charge toward `to_job`.
  void StartSwitch(size_t proc, JobId to_job, CacheOwner prefer);
  void OnSwitchDone(size_t proc);
  // Parks `worker_id` on `proc` without work; starts the yield-delay timer.
  void EnterHolding(size_t proc, CacheOwner worker_id);
  void OnYieldTimer(size_t proc);
  void OnQuantumTimer(size_t proc);

  void HandleJobCompletion(JobId id, size_t completing_proc);
  // New ready threads: resume held processors first, then advertise demand.
  void NotifyNewWork(JobId id);
  // Lets the job request processors until demand is met or the policy stops
  // granting.
  void RequestLoop(JobId id);

  void SetPending(size_t proc, JobId job, CacheOwner prefer);
  void ClearPending(size_t proc);

 private:
  // Assembles and emits one provenance record for a realised assignment.
  // Callers must check core_.decisions != nullptr first — the candidate
  // table walk is not free, so it must never run with tracing disabled.
  void RecordDecision(DecisionSite site, const Assignment& assignment);

  EngineCore& core_;
  Accounting& acct_;
  Dispatcher* dispatcher_ = nullptr;
};

}  // namespace affsched

#endif  // SRC_ENGINE_ALLOCATOR_PROTOCOL_H_
