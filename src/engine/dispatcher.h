// Dispatcher: gets useful work onto processors.
//
// Owns worker selection (affinity-aware or oblivious), the dispatch step of a
// reallocation (processor-history update, %affinity realisation), chunked
// execution against the machine's cache model (reload-miss realisation), and
// the chunk-boundary bookkeeping in OnChunkDone — thread completion, thread
// turnover in the cache, and handing preemptions back to the
// AllocatorProtocol.

#ifndef SRC_ENGINE_DISPATCHER_H_
#define SRC_ENGINE_DISPATCHER_H_

#include "src/engine/accounting.h"
#include "src/engine/engine_core.h"

namespace affsched {

class AllocatorProtocol;

class Dispatcher {
 public:
  Dispatcher(EngineCore& core, Accounting& acct) : core_(core), acct_(acct) {}

  // Completes the component graph (the protocol and dispatcher call into each
  // other at chunk and switch boundaries).
  void Connect(AllocatorProtocol* alloc) { alloc_ = alloc; }

  // Picks a worker of `job` to dispatch on `proc` (prefers `prefer`, then an
  // affine idle worker, then the most recently idled, then a new worker).
  CacheOwner SelectWorker(JobId id, size_t proc, CacheOwner prefer);
  void RemoveIdleWorker(JobState& js, CacheOwner id);
  // Parks the worker back onto its job's idle list (most recently idled
  // first).
  void ParkWorker(JobState& js, Worker& w);

  // Dispatches a worker of `proc`'s holder onto it (a reallocation), then
  // either starts a chunk or enters holding.
  void DispatchWorker(size_t proc);
  // Executes the next bounded chunk of the running worker's thread.
  void StartChunk(size_t proc);
  void OnChunkDone(size_t proc, SimDuration work_done, SimDuration reload_stall,
                   SimDuration steady_stall);

 private:
  EngineCore& core_;
  Accounting& acct_;
  AllocatorProtocol* alloc_ = nullptr;
};

}  // namespace affsched

#endif  // SRC_ENGINE_DISPATCHER_H_
