// The simulation engine: executes multiprogrammed parallel jobs on the
// simulated machine under a processor-allocation policy.
//
// Engine is a thin composition root over four layered components that share
// one EngineCore state block:
//
//   * EventQueue (src/sim/)            — pooled, zero-allocation event core;
//   * CacheModel via Machine           — the cache substrate chunks run on;
//   * Dispatcher (dispatcher.h)        — worker selection, chunk execution,
//                                        reload-miss realisation;
//   * AllocatorProtocol                — the Section-5 job<->allocator
//     (allocator_protocol.h)             negotiation and reallocation
//                                        mechanics;
//   * Accounting (accounting.h)        — every response-time-model term and
//                                        all telemetry.
//
// Engine itself owns job submission, the run loop, sampling, and the
// SchedView interface policies consult.

#ifndef SRC_ENGINE_ENGINE_H_
#define SRC_ENGINE_ENGINE_H_

#include <memory>
#include <string>
#include <vector>

#include "src/engine/accounting.h"
#include "src/engine/allocator_protocol.h"
#include "src/engine/dispatcher.h"
#include "src/engine/engine_core.h"
#include "src/telemetry/sampler.h"

namespace affsched {

class Engine : public SchedView {
 public:
  using Options = EngineOptions;

  Engine(const MachineConfig& machine_config, std::unique_ptr<Policy> policy, uint64_t seed,
         const Options& options = Options());

  // Submits a job of the given application, arriving at `arrival`.
  // Must be called before Run().
  JobId SubmitJob(const AppProfile& profile, SimTime arrival = 0);

  // Admits a job mid-run (open-system mode): the job enters service at the
  // current simulated time. `queued_since` is when it originally arrived at
  // the admission queue (<= now); the difference is accounted as
  // JobStats::queue_wait_s, separate from in-service response time. The
  // thread graph is built from `graph_seed`'s own deterministic stream rather
  // than the engine RNG, so workload draws stay identical across policies
  // (common random numbers) no matter how admission dynamics differ.
  JobId AdmitJob(const AppProfile& profile, SimTime queued_since, uint64_t graph_seed);

  // Schedules an external open-system event (an arrival-stream tick). Pending
  // external events keep Run() alive even when no submitted job remains, so
  // arrival streams can span idle periods. `fn` follows EventQueue callable
  // rules (trivially copyable, pointer/scalar captures only).
  template <typename F>
  void ScheduleExternal(SimTime when, F fn) {
    ++core_.external_pending;
    EngineCore* core = &core_;
    core_.queue.ScheduleAt(when, [core, fn] {
      --core->external_pending;
      fn();
    });
  }

  // Installs a hook invoked at each job completion, after the departure is
  // accounted but before the policy reacts. Open-system drivers admit queued
  // jobs from it. Call before Run().
  void SetCompletionHook(std::function<void(JobId)> hook);

  // Runs the simulation until all submitted jobs complete and no external
  // events remain. Returns the completion time of the last job.
  SimTime Run();

  // Streams scheduling events to `sink` (nullptr disables tracing). The sink
  // must outlive the engine.
  void SetTraceSink(TraceSink* sink) { core_.trace = sink; }

  // Streams decision-provenance records (why each assignment happened,
  // candidate scores included) to `sink`; nullptr (the default) disables at
  // the cost of one pointer compare per realised assignment. The sink must
  // outlive the engine.
  void SetDecisionSink(DecisionSink* sink) { core_.decisions = sink; }

  // Collects per-job lifecycle spans (arrival, queue wait, dispatches,
  // migrations, completion); nullptr detaches. The collector must outlive
  // the engine. Call before Run().
  void SetSpanCollector(JobSpanCollector* spans) { acct_.SetSpanCollector(spans); }

  // Attaches a metrics registry (nullptr detaches). The engine registers its
  // counters/gauges/histograms under "engine.*" and "bus.*" and updates them
  // as the run proceeds; per-job counters are created when Run() starts.
  // When detached (the default) every instrumentation site costs one null
  // check. The registry must outlive the engine. Call before Run().
  void SetMetrics(MetricsRegistry* registry) { acct_.SetMetrics(registry); }

  // Attaches a time-series sampler (nullptr detaches). Run() installs the
  // standard probes — per-job allocation and runnable demand, a rolling
  // %affinity window, active jobs, bus utilisation — then samples on the
  // sampler's cadence for as long as jobs remain. Callers may add their own
  // probes before Run(). The sampler must outlive the engine.
  void SetSampler(Sampler* sampler);

  // --- Results ---------------------------------------------------------------

  size_t job_count() const { return core_.jobs.size(); }
  const Job& job(JobId id) const;
  const JobStats& job_stats(JobId id) const { return job(id).stats(); }
  const std::string& job_name(JobId id) const { return job(id).name(); }
  const WeightedHistogram* parallelism_histogram(JobId id) const;

  const Machine& machine() const { return core_.machine; }
  SimTime now() const { return core_.queue.now(); }
  const Policy& policy() const { return *core_.policy; }
  // Event-core churn counters (`simctl --engine-stats`).
  const EventQueue::Stats& event_queue_stats() const { return core_.queue.stats(); }

  // --- SchedView -------------------------------------------------------------

  size_t NumProcessors() const override;
  std::vector<JobId> ActiveJobs() const override;
  size_t Allocation(JobId job) const override;
  size_t EffectiveAllocation(JobId job) const override;
  size_t MaxParallelism(JobId job) const override;
  size_t PendingDemand(JobId job) const override;
  JobId ProcessorJob(size_t proc) const override;
  bool WillingToYield(size_t proc) const override;
  bool ReassignmentPending(size_t proc) const override;
  CacheOwner LastTaskOn(size_t proc) const override;
  std::vector<CacheOwner> RecentTasksOn(size_t proc) const override;
  bool TaskRunnable(CacheOwner task) const override;
  JobId TaskJob(CacheOwner task) const override;
  size_t DesiredProcessor(JobId job) const override;
  double Priority(JobId job) const override;
  size_t DistanceTier(size_t from, size_t to) const override;
  double ReloadCostSeconds(JobId job, size_t proc) const override;
  double WorkingSetBlocks(JobId job) const override;
  double SharedWriteRate(JobId job) const override;
  double DeadlineSeconds(JobId job) const override;
  size_t NumColors() const override;

 private:
  JobId SubmitJobInternal(const AppProfile& profile, SimTime arrival, SimTime queued_since,
                          Rng graph_rng);
  void OnJobArrival(JobId id);

  // Registers the standard probes and starts the recurring sampling event.
  void StartSampling();
  void SamplerTick();

  // Starts the periodic load-balance tick when the policy (or the
  // EngineOptions override) asks for one; no-op otherwise.
  void StartBalancing();
  void BalanceTick(SimDuration cadence);

  // Prints processor and job state to stderr (deadlock diagnosis).
  void DumpState() const;

  EngineCore core_;
  Accounting acct_;
  Dispatcher dispatcher_;
  AllocatorProtocol alloc_;
  Sampler* sampler_ = nullptr;
};

}  // namespace affsched

#endif  // SRC_ENGINE_ENGINE_H_
