// The simulation engine: executes multiprogrammed parallel jobs on the
// simulated machine under a processor-allocation policy.
//
// Responsibilities:
//   * discrete-event execution of worker tasks in bounded "chunks" of useful
//     work (preemption takes effect at chunk boundaries);
//   * the job <-> allocator protocol of Section 5: jobs advertise processor
//     requests and willing-to-yield processors; the policy decides placements;
//   * reallocation mechanics: kernel path-length cost (750 us on the base
//     machine) followed by dispatch of a worker, whose reload misses against
//     its cache footprint realise the affinity penalty;
//   * per-job accounting of every term in the paper's response-time model:
//     work, waste, #reallocations, %affinity, switch time, reload stalls,
//     allocation integral.
//
// The engine implements SchedView, the read-only state interface policies
// consult.

#ifndef SRC_ENGINE_ENGINE_H_
#define SRC_ENGINE_ENGINE_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "src/common/rng.h"
#include "src/machine/machine.h"
#include "src/sched/policy.h"
#include "src/sim/event_queue.h"
#include "src/stats/histogram.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/sampler.h"
#include "src/trace/trace.h"
#include "src/workload/app_profile.h"
#include "src/workload/job.h"
#include "src/workload/worker.h"

namespace affsched {

struct EngineOptions {
  // Maximum useful work per execution chunk; bounds dispatch latency.
  SimDuration chunk_quantum = Milliseconds(2);
  // Decay constant of the usage-credit priority scheme.
  double credit_decay_s = 8.0;
  // Record per-job parallelism histograms (Figures 2-4).
  bool record_parallelism = false;
  // Depth of each task's processor history (P of Section 5.3; the paper
  // evaluates P = 1). Affinity placement may use any remembered processor;
  // %affinity statistics always use the most recent one.
  size_t processor_history_depth = 1;
};

class Engine : public SchedView {
 public:
  using Options = EngineOptions;

  Engine(const MachineConfig& machine_config, std::unique_ptr<Policy> policy, uint64_t seed,
         const Options& options = Options());

  // Submits a job of the given application, arriving at `arrival`.
  // Must be called before Run().
  JobId SubmitJob(const AppProfile& profile, SimTime arrival = 0);

  // Runs the simulation until all submitted jobs complete.
  // Returns the completion time of the last job.
  SimTime Run();

  // Streams scheduling events to `sink` (nullptr disables tracing). The sink
  // must outlive the engine.
  void SetTraceSink(TraceSink* sink) { trace_ = sink; }

  // Attaches a metrics registry (nullptr detaches). The engine registers its
  // counters/gauges/histograms under "engine.*" and "bus.*" and updates them
  // as the run proceeds; per-job counters are created when Run() starts.
  // When detached (the default) every instrumentation site costs one null
  // check. The registry must outlive the engine. Call before Run().
  void SetMetrics(MetricsRegistry* registry);

  // Attaches a time-series sampler (nullptr detaches). Run() installs the
  // standard probes — per-job allocation and runnable demand, a rolling
  // %affinity window, active jobs, bus utilisation — then samples on the
  // sampler's cadence for as long as jobs remain. Callers may add their own
  // probes before Run(). The sampler must outlive the engine.
  void SetSampler(Sampler* sampler);

  // --- Results ---------------------------------------------------------------

  size_t job_count() const { return jobs_.size(); }
  const Job& job(JobId id) const;
  const JobStats& job_stats(JobId id) const { return job(id).stats(); }
  const std::string& job_name(JobId id) const { return job(id).name(); }
  const WeightedHistogram* parallelism_histogram(JobId id) const;

  const Machine& machine() const { return machine_; }
  SimTime now() const { return queue_.now(); }
  const Policy& policy() const { return *policy_; }

  // --- SchedView -------------------------------------------------------------

  size_t NumProcessors() const override;
  std::vector<JobId> ActiveJobs() const override;
  size_t Allocation(JobId job) const override;
  size_t EffectiveAllocation(JobId job) const override;
  size_t MaxParallelism(JobId job) const override;
  size_t PendingDemand(JobId job) const override;
  JobId ProcessorJob(size_t proc) const override;
  bool WillingToYield(size_t proc) const override;
  bool ReassignmentPending(size_t proc) const override;
  CacheOwner LastTaskOn(size_t proc) const override;
  std::vector<CacheOwner> RecentTasksOn(size_t proc) const override;
  bool TaskRunnable(CacheOwner task) const override;
  JobId TaskJob(CacheOwner task) const override;
  size_t DesiredProcessor(JobId job) const override;
  double Priority(JobId job) const override;

 private:
  struct ProcState {
    JobId holder = kInvalidJobId;
    // Worker executing a chunk here (kNoOwner if none).
    CacheOwner running = kNoOwner;
    // Worker placed here but currently without a thread.
    CacheOwner holding = kNoOwner;
    // True while the reallocation path-length cost is being paid.
    bool switching = false;
    // Advertised as reallocatable.
    bool willing = false;
    // Committed reassignment, applied at the next chunk boundary (or at
    // switch completion).
    bool pending_valid = false;
    JobId pending_job = kInvalidJobId;
    CacheOwner pending_prefer = kNoOwner;
    // Task the policy asked to see dispatched once the in-progress switch
    // completes (rule A.1).
    CacheOwner dispatch_prefer = kNoOwner;
    SimTime hold_start = 0;
    EventId yield_timer = kInvalidEventId;
    EventId quantum_timer = kInvalidEventId;
  };

  struct JobState {
    // Stable storage for the job's application profile (Job keeps a
    // reference to it).
    std::unique_ptr<AppProfile> profile;
    std::unique_ptr<Job> job;
    bool active = false;     // arrived and not completed
    size_t allocation = 0;   // processors currently held (incl. switching)
    size_t pending_incoming = 0;
    size_t pending_outgoing = 0;
    // Processors mid-switch toward this job (they will consume a ready
    // thread when the switch completes).
    size_t switching_in = 0;
    // Idle workers, most recently idled first.
    std::vector<CacheOwner> idle_workers;
    size_t running_workers = 0;
    // Usage-credit priority state.
    double credit = 0.0;
    SimTime credit_update = 0;
    SimTime alloc_update = 0;
    std::unique_ptr<WeightedHistogram> par_hist;
    SimTime par_update = 0;
    // Per-job metric handles (nullptr while metrics are detached).
    Counter* metric_reallocations = nullptr;
    Counter* metric_reload_stall_ns = nullptr;
  };

  // Global metric handles, resolved once by SetMetrics. All nullptr while
  // metrics are detached, making every Bump() a single-branch no-op.
  struct MetricHandles {
    Counter* job_arrivals = nullptr;
    Counter* job_completions = nullptr;
    Counter* dispatches = nullptr;
    Counter* dispatches_affine = nullptr;
    Counter* resumes = nullptr;
    Counter* preempts = nullptr;
    Counter* switches = nullptr;
    Counter* switch_time_ns = nullptr;
    Counter* holds = nullptr;
    Counter* yields = nullptr;
    Counter* releases = nullptr;
    Counter* thread_completions = nullptr;
    Counter* chunks = nullptr;
    Counter* reload_stall_ns = nullptr;
    Counter* steady_stall_ns = nullptr;
    Counter* waste_ns = nullptr;
    Gauge* active_jobs = nullptr;
    FixedHistogram* reload_stall_us = nullptr;
    FixedHistogram* chunk_wall_us = nullptr;
  };

  // --- Event handlers --------------------------------------------------------

  void OnJobArrival(JobId id);
  void OnChunkDone(size_t proc, SimDuration work_done, SimDuration reload_stall,
                   SimDuration steady_stall);
  void OnSwitchDone(size_t proc);
  void OnYieldTimer(size_t proc);
  void OnQuantumTimer(size_t proc);

  // --- Mechanics -------------------------------------------------------------

  void ApplyDecision(const PolicyDecision& decision);
  void Reconcile(const std::map<JobId, size_t>& targets);
  void AssignProcessor(const Assignment& assignment);
  // Ends a holding period (waste accounting) and detaches the worker.
  void ReleaseFromHolder(size_t proc);
  void StartSwitch(size_t proc, JobId to_job, CacheOwner prefer);
  void DispatchWorker(size_t proc);
  void StartChunk(size_t proc);
  void EnterHolding(size_t proc, CacheOwner worker_id);
  void HandleJobCompletion(JobId id, size_t completing_proc);
  void NotifyNewWork(JobId id);
  void RequestLoop(JobId id);
  void SetPending(size_t proc, JobId job, CacheOwner prefer);
  void ClearPending(size_t proc);
  // Parks the worker executing/holding on `proc` back onto its job's idle
  // list.
  void ParkWorker(JobState& js, Worker& w);

  // Prints processor and job state to stderr (deadlock diagnosis).
  void DumpState() const;

  // --- Bookkeeping -----------------------------------------------------------

  Worker& worker(CacheOwner id);
  const Worker& worker(CacheOwner id) const;
  JobState& job_state(JobId id);
  const JobState& job_state(JobId id) const;
  CacheOwner CreateWorker(JobId id);
  // Picks a worker of `job` to dispatch on `proc` (prefers `prefer`, then an
  // affine idle worker, then the most recently idled, then a new worker).
  CacheOwner SelectWorker(JobId id, size_t proc, CacheOwner prefer);
  void RemoveIdleWorker(JobState& js, CacheOwner id);
  void UpdateAllocIntegral(JobId id);
  void UpdateCredit(JobId id);
  void ChangeAllocation(JobId id, int delta);
  void RecordParallelism(JobId id);
  void SetRunningWorkers(JobId id, int delta);
  double FairShare() const;
  void Emit(TraceEventKind kind, size_t proc, JobId job, CacheOwner worker = kNoOwner,
            bool affine = false);

  // --- Telemetry -------------------------------------------------------------

  static void Bump(Counter* counter, double delta = 1.0) {
    if (counter != nullptr) {
      counter->Add(delta);
    }
  }
  // Creates the per-job counters (Run() start, when all jobs are known).
  void ResolveJobMetrics();
  // End-of-run totals that are cheaper to read once than to stream: bus
  // transfer and peak-utilisation counters.
  void FinalizeMetrics();
  // Registers the standard probes and starts the recurring sampling event.
  void StartSampling();
  void SamplerTick();

  Options options_;
  EventQueue queue_;
  Machine machine_;
  std::unique_ptr<Policy> policy_;
  Rng rng_;

  std::vector<JobState> jobs_;          // indexed by JobId
  std::vector<JobId> active_jobs_;      // arrival order
  std::vector<ProcState> procs_;
  std::unordered_map<CacheOwner, Worker> workers_;
  CacheOwner next_worker_id_ = 1;
  size_t jobs_remaining_ = 0;
  bool running_ = false;
  TraceSink* trace_ = nullptr;
  MetricsRegistry* metrics_ = nullptr;
  MetricHandles m_;
  Sampler* sampler_ = nullptr;
};

}  // namespace affsched

#endif  // SRC_ENGINE_ENGINE_H_
