#include "src/engine/engine.h"

#include <algorithm>
#include <utility>

#include "src/common/check.h"
#include "src/common/log.h"

namespace affsched {

Engine::Engine(const MachineConfig& machine_config, std::unique_ptr<Policy> policy, uint64_t seed,
               const Options& options)
    : core_(machine_config, std::move(policy), seed, options),
      acct_(core_),
      dispatcher_(core_, acct_),
      alloc_(core_, acct_) {
  core_.view = this;
  dispatcher_.Connect(&alloc_);
  alloc_.Connect(&dispatcher_);
}

JobId Engine::SubmitJob(const AppProfile& profile, SimTime arrival) {
  AFF_CHECK_MSG(!core_.running, "SubmitJob must be called before Run()");
  AFF_CHECK(arrival >= 0);
  return SubmitJobInternal(profile, arrival, arrival, core_.rng.Split());
}

JobId Engine::AdmitJob(const AppProfile& profile, SimTime queued_since, uint64_t graph_seed) {
  AFF_CHECK_MSG(core_.running, "AdmitJob is for mid-run (open-system) submission");
  const SimTime now = core_.queue.now();
  AFF_CHECK(queued_since >= 0 && queued_since <= now);
  const JobId id = SubmitJobInternal(profile, now, queued_since, Rng(graph_seed));
  acct_.ResolveJobMetricsFor(id);
  return id;
}

JobId Engine::SubmitJobInternal(const AppProfile& profile, SimTime arrival, SimTime queued_since,
                                Rng graph_rng) {
  const JobId id = static_cast<JobId>(core_.jobs.size());
  JobState js;
  js.profile = std::make_unique<AppProfile>(profile);
  auto graph = js.profile->build_graph(graph_rng);
  js.job = std::make_unique<Job>(id, *js.profile, std::move(graph), arrival);
  js.job->stats().queue_wait_s = ToSeconds(arrival - queued_since);
  if (core_.options.record_parallelism) {
    js.par_hist = std::make_unique<WeightedHistogram>(core_.machine.num_processors());
  }
  core_.jobs.push_back(std::move(js));
  ++core_.jobs_remaining;
  core_.queue.ScheduleAt(arrival, [this, id] { OnJobArrival(id); });
  return id;
}

void Engine::SetCompletionHook(std::function<void(JobId)> hook) {
  AFF_CHECK_MSG(!core_.running, "SetCompletionHook must be called before Run()");
  core_.completion_hook = std::move(hook);
}

SimTime Engine::Run() {
  AFF_CHECK(!core_.running);
  core_.running = true;
  acct_.ResolveJobMetrics();
  if (sampler_ != nullptr) {
    StartSampling();
  }
  StartBalancing();
  SimTime last_completion = 0;
  while (core_.WorkRemaining()) {
    if (!core_.queue.RunNext()) {
      DumpState();
      AFF_CHECK_MSG(false, "simulation stalled with jobs outstanding");
    }
  }
  acct_.FinalizeMetrics();
  for (const JobState& js : core_.jobs) {
    last_completion = std::max(last_completion, js.job->stats().completion);
  }
  return last_completion;
}

void Engine::OnJobArrival(JobId id) {
  JobState& js = core_.job_state(id);
  js.active = true;
  js.job->stats().arrival = core_.queue.now();
  js.credit_update = core_.queue.now();
  js.alloc_update = core_.queue.now();
  js.par_update = core_.queue.now();
  core_.active_jobs.push_back(id);
  core_.Emit(TraceEventKind::kJobArrival, SIZE_MAX, id);
  acct_.NoteJobArrival(id);
  if (acct_.m.active_jobs != nullptr) {
    acct_.m.active_jobs->Set(static_cast<double>(core_.active_jobs.size()));
  }
  PolicyDecision decision = core_.policy->OnJobArrival(*this, id);
  // Color reservation is consulted once, after the arrival decision (so the
  // policy has already folded the job into its plan) and before any worker
  // exists (so every worker inherits the mask).
  if (core_.machine.config().cache_model == CacheModelKind::kPartitioned) {
    core_.job_state(id).color_mask = core_.policy->ColorMask(*this, id);
  }
  alloc_.ApplyDecision(std::move(decision), DecisionSite::kJobArrival);
  alloc_.RequestLoop(id);
}

// --- Telemetry ---------------------------------------------------------------

void Engine::SetSampler(Sampler* sampler) {
  AFF_CHECK_MSG(!core_.running, "SetSampler must be called before Run()");
  sampler_ = sampler;
}

void Engine::StartSampling() {
  // Standard machine-wide probes, then three per job. User probes registered
  // before Run() keep their earlier columns.
  sampler_->AddProbe("active_jobs",
                     [this] { return static_cast<double>(core_.active_jobs.size()); });
  sampler_->AddProbe("bus_util",
                     [this] { return core_.machine.bus().UtilizationAt(core_.queue.now()); });
  sampler_->AddProbe("runnable_demand", [this] {
    size_t demand = 0;
    for (JobId id : core_.active_jobs) {
      demand += core_.PendingDemand(id);
    }
    return static_cast<double>(demand);
  });
  for (JobId id = 0; id < core_.jobs.size(); ++id) {
    const std::string label = core_.jobs[id].job->name() + "#" + std::to_string(id);
    sampler_->AddProbe("alloc." + label, [this, id] {
      return static_cast<double>(core_.jobs[id].allocation);
    });
    sampler_->AddProbe("demand." + label, [this, id] {
      return static_cast<double>(core_.PendingDemand(id));
    });
    // Rolling %affinity: the affine fraction of the dispatches that happened
    // since the previous sample (0 when the window saw none).
    sampler_->AddProbe("affinity_win." + label,
                       [this, id, last = std::pair<uint64_t, uint64_t>{0, 0}]() mutable {
                         const JobStats& st = core_.jobs[id].job->stats();
                         const uint64_t dispatches = st.reallocations - last.first;
                         const uint64_t affine = st.affinity_dispatches - last.second;
                         last = {st.reallocations, st.affinity_dispatches};
                         return dispatches > 0 ? static_cast<double>(affine) /
                                                     static_cast<double>(dispatches)
                                               : 0.0;
                       });
  }
  SamplerTick();
}

void Engine::SamplerTick() {
  sampler_->Sample(core_.queue.now());
  // Reschedule only while the simulation still has real events: if the queue
  // is empty here the run is either finished or stalled, and in the stalled
  // case the deadlock diagnostics in Run() must fire rather than the sampler
  // ticking forever.
  if (core_.WorkRemaining() && !core_.queue.empty()) {
    core_.queue.ScheduleAfter(sampler_->cadence(), [this] { SamplerTick(); });
  }
}

// --- Load balancing ----------------------------------------------------------

void Engine::StartBalancing() {
  // The EngineOptions override wins so sweeps can vary the cadence without a
  // per-policy constructor path; 0 everywhere means no tick is ever scheduled
  // and the run is byte-identical to a pre-balancing engine.
  const SimDuration cadence = core_.options.balance_interval > 0
                                  ? core_.options.balance_interval
                                  : core_.policy->BalanceInterval();
  if (cadence > 0) {
    core_.queue.ScheduleAfter(cadence, [this, cadence] { BalanceTick(cadence); });
  }
}

void Engine::BalanceTick(SimDuration cadence) {
  if (core_.jobs_remaining > 0 && !core_.active_jobs.empty()) {
    alloc_.ApplyDecision(core_.policy->OnBalanceTick(*this), DecisionSite::kBalanceTick);
  }
  // Mirror SamplerTick: keep ticking only while the simulation has real
  // events, so a stalled run still reaches the deadlock diagnostics.
  if (core_.WorkRemaining() && !core_.queue.empty()) {
    core_.queue.ScheduleAfter(cadence, [this, cadence] { BalanceTick(cadence); });
  }
}

// --- Results -----------------------------------------------------------------

const Job& Engine::job(JobId id) const {
  AFF_CHECK(id < core_.jobs.size());
  return *core_.jobs[id].job;
}

const WeightedHistogram* Engine::parallelism_histogram(JobId id) const {
  AFF_CHECK(id < core_.jobs.size());
  return core_.jobs[id].par_hist.get();
}

// --- SchedView ---------------------------------------------------------------

size_t Engine::NumProcessors() const { return core_.procs.size(); }

std::vector<JobId> Engine::ActiveJobs() const { return core_.active_jobs; }

size_t Engine::Allocation(JobId id) const { return core_.job_state(id).allocation; }

size_t Engine::EffectiveAllocation(JobId id) const { return core_.EffectiveAllocation(id); }

size_t Engine::MaxParallelism(JobId id) const { return job(id).max_parallelism(); }

size_t Engine::PendingDemand(JobId id) const { return core_.PendingDemand(id); }

JobId Engine::ProcessorJob(size_t proc) const {
  AFF_CHECK(proc < core_.procs.size());
  return core_.procs[proc].holder;
}

bool Engine::WillingToYield(size_t proc) const {
  AFF_CHECK(proc < core_.procs.size());
  const ProcState& ps = core_.procs[proc];
  return ps.willing && !ps.pending_valid;
}

bool Engine::ReassignmentPending(size_t proc) const {
  AFF_CHECK(proc < core_.procs.size());
  return core_.procs[proc].pending_valid;
}

CacheOwner Engine::LastTaskOn(size_t proc) const {
  return const_cast<EngineCore&>(core_).machine.processor(proc).last_task();
}

std::vector<CacheOwner> Engine::RecentTasksOn(size_t proc) const {
  const auto& history = const_cast<EngineCore&>(core_).machine.processor(proc).recent_tasks();
  return std::vector<CacheOwner>(history.begin(), history.end());
}

bool Engine::TaskRunnable(CacheOwner task) const {
  if (!core_.HasWorker(task)) {
    return false;
  }
  const Worker& w = core_.worker(task);
  if (w.state != Worker::State::kIdle) {
    return false;
  }
  return core_.PendingDemand(w.job) > 0;
}

JobId Engine::TaskJob(CacheOwner task) const {
  return core_.HasWorker(task) ? core_.worker(task).job : kInvalidJobId;
}

size_t Engine::DesiredProcessor(JobId id) const {
  const JobState& js = core_.job_state(id);
  for (CacheOwner wid : js.idle_workers) {
    const Worker& w = core_.worker(wid);
    if (w.last_processor() != kNoProcessor) {
      return w.last_processor();
    }
  }
  return kNoProcessor;
}

double Engine::Priority(JobId id) const { return core_.Priority(id); }

size_t Engine::DistanceTier(size_t from, size_t to) const {
  return core_.machine.topology().TierBetween(from, to);
}

double Engine::ReloadCostSeconds(JobId id, size_t proc) const {
  AFF_CHECK(proc < core_.procs.size());
  const JobState& js = core_.job_state(id);
  // Reference task: the job's first idle worker with a placement history —
  // the worker the dispatcher is most likely to pick, and the same reference
  // the decision trace scores candidates with (AllocatorProtocol::
  // RecordDecision). A job with no history pays the full working-set reload
  // on any processor.
  CacheOwner task = kNoOwner;
  for (CacheOwner wid : js.idle_workers) {
    if (core_.worker(wid).last_processor() != kNoProcessor) {
      task = wid;
      break;
    }
  }
  const CacheModel& cache = const_cast<EngineCore&>(core_).machine.processor(proc).cache();
  const double resident = task != kNoOwner ? cache.Resident(task) : 0.0;
  const double target = cache.MaxResident(js.profile->working_set.blocks);
  return target > resident ? (target - resident) * core_.machine.config().MissServiceSeconds()
                           : 0.0;
}

double Engine::WorkingSetBlocks(JobId id) const {
  return core_.job_state(id).profile->working_set.blocks;
}

double Engine::SharedWriteRate(JobId id) const {
  return core_.job_state(id).profile->working_set.shared_write_per_s;
}

double Engine::DeadlineSeconds(JobId id) const {
  return core_.job_state(id).profile->rt.deadline_s;
}

size_t Engine::NumColors() const { return core_.machine.config().num_colors; }

// --- Diagnostics -------------------------------------------------------------

void Engine::DumpState() const {
  // Deadlock diagnostics go through the leveled logger: visible by default
  // (warn), and available on demand via AFFSCHED_LOG_LEVEL=debug from other
  // call sites without recompiling.
  const LogLevel level = LogLevel::kWarn;
  if (!LogEnabled(level)) {
    return;
  }
  Logf(level, "=== engine state at t=%lld ns ===", static_cast<long long>(core_.queue.now()));
  for (size_t p = 0; p < core_.procs.size(); ++p) {
    const ProcState& ps = core_.procs[p];
    Logf(level,
         "proc %zu: holder=%d running=%llu holding=%llu switching=%d willing=%d "
         "pending=%d->%d",
         p, ps.holder == kInvalidJobId ? -1 : static_cast<int>(ps.holder),
         static_cast<unsigned long long>(ps.running),
         static_cast<unsigned long long>(ps.holding), ps.switching ? 1 : 0, ps.willing ? 1 : 0,
         ps.pending_valid ? 1 : 0, ps.pending_valid ? static_cast<int>(ps.pending_job) : -1);
  }
  for (size_t j = 0; j < core_.jobs.size(); ++j) {
    const JobState& js = core_.jobs[j];
    Logf(level,
         "job %zu (%s): active=%d ready=%zu alloc=%zu in=%zu out=%zu switching_in=%zu "
         "demand=%zu remaining=%zu idle_workers=%zu",
         j, js.job->name().c_str(), js.active ? 1 : 0, js.job->ReadyCount(), js.allocation,
         js.pending_incoming, js.pending_outgoing, js.switching_in,
         core_.PendingDemand(static_cast<JobId>(j)), js.job->graph().remaining(),
         js.idle_workers.size());
  }
}

}  // namespace affsched
