#include "src/engine/engine.h"

#include <algorithm>
#include <cmath>

#include "src/common/check.h"
#include "src/common/log.h"

namespace affsched {

Engine::Engine(const MachineConfig& machine_config, std::unique_ptr<Policy> policy, uint64_t seed,
               const Options& options)
    : options_(options), machine_(machine_config), policy_(std::move(policy)), rng_(seed) {
  AFF_CHECK(policy_ != nullptr);
  AFF_CHECK(options_.chunk_quantum > 0);
  procs_.resize(machine_.num_processors());
}

JobId Engine::SubmitJob(const AppProfile& profile, SimTime arrival) {
  AFF_CHECK_MSG(!running_, "SubmitJob must be called before Run()");
  AFF_CHECK(arrival >= 0);
  const JobId id = static_cast<JobId>(jobs_.size());
  JobState js;
  js.profile = std::make_unique<AppProfile>(profile);
  Rng job_rng = rng_.Split();
  auto graph = js.profile->build_graph(job_rng);
  js.job = std::make_unique<Job>(id, *js.profile, std::move(graph), arrival);
  if (options_.record_parallelism) {
    js.par_hist = std::make_unique<WeightedHistogram>(machine_.num_processors());
  }
  jobs_.push_back(std::move(js));
  ++jobs_remaining_;
  queue_.ScheduleAt(arrival, [this, id] { OnJobArrival(id); });
  return id;
}

SimTime Engine::Run() {
  AFF_CHECK(!running_);
  running_ = true;
  ResolveJobMetrics();
  if (sampler_ != nullptr) {
    StartSampling();
  }
  SimTime last_completion = 0;
  while (jobs_remaining_ > 0) {
    if (!queue_.RunNext()) {
      DumpState();
      AFF_CHECK_MSG(false, "simulation stalled with jobs outstanding");
    }
  }
  FinalizeMetrics();
  for (const JobState& js : jobs_) {
    last_completion = std::max(last_completion, js.job->stats().completion);
  }
  return last_completion;
}

// --- Telemetry ---------------------------------------------------------------

void Engine::SetMetrics(MetricsRegistry* registry) {
  AFF_CHECK_MSG(!running_, "SetMetrics must be called before Run()");
  metrics_ = registry;
  m_ = MetricHandles{};
  if (registry == nullptr) {
    return;
  }
  m_.job_arrivals = registry->FindOrCreateCounter("engine.job_arrivals");
  m_.job_completions = registry->FindOrCreateCounter("engine.job_completions");
  m_.dispatches = registry->FindOrCreateCounter("engine.dispatches");
  m_.dispatches_affine = registry->FindOrCreateCounter("engine.dispatches_affine");
  m_.resumes = registry->FindOrCreateCounter("engine.resumes");
  m_.preempts = registry->FindOrCreateCounter("engine.preempts");
  m_.switches = registry->FindOrCreateCounter("engine.switches");
  m_.switch_time_ns = registry->FindOrCreateCounter("engine.switch_time_ns");
  m_.holds = registry->FindOrCreateCounter("engine.holds");
  m_.yields = registry->FindOrCreateCounter("engine.yields");
  m_.releases = registry->FindOrCreateCounter("engine.releases");
  m_.thread_completions = registry->FindOrCreateCounter("engine.thread_completions");
  m_.chunks = registry->FindOrCreateCounter("engine.chunks");
  m_.reload_stall_ns = registry->FindOrCreateCounter("engine.reload_stall_ns");
  m_.steady_stall_ns = registry->FindOrCreateCounter("engine.steady_stall_ns");
  m_.waste_ns = registry->FindOrCreateCounter("engine.waste_ns");
  m_.active_jobs = registry->FindOrCreateGauge("engine.active_jobs");
  m_.reload_stall_us =
      registry->FindOrCreateHistogram("engine.reload_stall_us", DefaultLatencyBucketsUs());
  m_.chunk_wall_us =
      registry->FindOrCreateHistogram("engine.chunk_wall_us", DefaultLatencyBucketsUs());
}

void Engine::SetSampler(Sampler* sampler) {
  AFF_CHECK_MSG(!running_, "SetSampler must be called before Run()");
  sampler_ = sampler;
}

void Engine::ResolveJobMetrics() {
  if (metrics_ == nullptr) {
    return;
  }
  for (JobId id = 0; id < jobs_.size(); ++id) {
    JobState& js = jobs_[id];
    const std::string prefix = "engine.job." + js.job->name() + "#" + std::to_string(id);
    js.metric_reallocations = metrics_->FindOrCreateCounter(prefix + ".reallocations");
    js.metric_reload_stall_ns = metrics_->FindOrCreateCounter(prefix + ".reload_stall_ns");
  }
}

void Engine::FinalizeMetrics() {
  if (metrics_ == nullptr) {
    return;
  }
  metrics_->FindOrCreateCounter("bus.transfers")->Add(machine_.bus().total_transfers());
  metrics_->FindOrCreateGauge("bus.peak_utilization")->Set(machine_.bus().peak_utilization());
  metrics_->FindOrCreateGauge("bus.utilization")->Set(machine_.bus().UtilizationAt(queue_.now()));
}

void Engine::StartSampling() {
  // Standard machine-wide probes, then three per job. User probes registered
  // before Run() keep their earlier columns.
  sampler_->AddProbe("active_jobs", [this] { return static_cast<double>(active_jobs_.size()); });
  sampler_->AddProbe("bus_util", [this] { return machine_.bus().UtilizationAt(queue_.now()); });
  sampler_->AddProbe("runnable_demand", [this] {
    size_t demand = 0;
    for (JobId id : active_jobs_) {
      demand += PendingDemand(id);
    }
    return static_cast<double>(demand);
  });
  for (JobId id = 0; id < jobs_.size(); ++id) {
    const std::string label = jobs_[id].job->name() + "#" + std::to_string(id);
    sampler_->AddProbe("alloc." + label, [this, id] {
      return static_cast<double>(jobs_[id].allocation);
    });
    sampler_->AddProbe("demand." + label, [this, id] {
      return static_cast<double>(PendingDemand(id));
    });
    // Rolling %affinity: the affine fraction of the dispatches that happened
    // since the previous sample (0 when the window saw none).
    sampler_->AddProbe("affinity_win." + label,
                       [this, id, last = std::pair<uint64_t, uint64_t>{0, 0}]() mutable {
                         const JobStats& st = jobs_[id].job->stats();
                         const uint64_t dispatches = st.reallocations - last.first;
                         const uint64_t affine = st.affinity_dispatches - last.second;
                         last = {st.reallocations, st.affinity_dispatches};
                         return dispatches > 0 ? static_cast<double>(affine) /
                                                     static_cast<double>(dispatches)
                                               : 0.0;
                       });
  }
  SamplerTick();
}

void Engine::SamplerTick() {
  sampler_->Sample(queue_.now());
  // Reschedule only while the simulation still has real events: if the queue
  // is empty here the run is either finished or stalled, and in the stalled
  // case the deadlock diagnostics in Run() must fire rather than the sampler
  // ticking forever.
  if (jobs_remaining_ > 0 && !queue_.empty()) {
    queue_.ScheduleAfter(sampler_->cadence(), [this] { SamplerTick(); });
  }
}

const Job& Engine::job(JobId id) const {
  AFF_CHECK(id < jobs_.size());
  return *jobs_[id].job;
}

const WeightedHistogram* Engine::parallelism_histogram(JobId id) const {
  AFF_CHECK(id < jobs_.size());
  return jobs_[id].par_hist.get();
}

// --- SchedView ---------------------------------------------------------------

size_t Engine::NumProcessors() const { return procs_.size(); }

std::vector<JobId> Engine::ActiveJobs() const { return active_jobs_; }

size_t Engine::Allocation(JobId id) const { return job_state(id).allocation; }

size_t Engine::EffectiveAllocation(JobId id) const {
  const JobState& js = job_state(id);
  const size_t committed = js.allocation + js.pending_incoming;
  return committed > js.pending_outgoing ? committed - js.pending_outgoing : 0;
}

size_t Engine::MaxParallelism(JobId id) const { return job(id).max_parallelism(); }

size_t Engine::PendingDemand(JobId id) const {
  const JobState& js = job_state(id);
  if (!js.active) {
    return 0;
  }
  const size_t incoming = js.pending_incoming + js.switching_in;
  const size_t ready = js.job->ReadyCount();
  if (ready <= incoming) {
    return 0;
  }
  const size_t committed = js.allocation + js.pending_incoming;
  const size_t outgoing = js.pending_outgoing;
  const size_t effective = committed > outgoing ? committed - outgoing : 0;
  const size_t cap = js.job->max_parallelism();
  if (effective >= cap) {
    return 0;
  }
  return std::min(ready - incoming, cap - effective);
}

JobId Engine::ProcessorJob(size_t proc) const {
  AFF_CHECK(proc < procs_.size());
  return procs_[proc].holder;
}

bool Engine::WillingToYield(size_t proc) const {
  AFF_CHECK(proc < procs_.size());
  const ProcState& ps = procs_[proc];
  return ps.willing && !ps.pending_valid;
}

bool Engine::ReassignmentPending(size_t proc) const {
  AFF_CHECK(proc < procs_.size());
  return procs_[proc].pending_valid;
}

CacheOwner Engine::LastTaskOn(size_t proc) const {
  return const_cast<Engine*>(this)->machine_.processor(proc).last_task();
}

std::vector<CacheOwner> Engine::RecentTasksOn(size_t proc) const {
  const auto& history = const_cast<Engine*>(this)->machine_.processor(proc).recent_tasks();
  return std::vector<CacheOwner>(history.begin(), history.end());
}

bool Engine::TaskRunnable(CacheOwner task) const {
  auto it = workers_.find(task);
  if (it == workers_.end()) {
    return false;
  }
  const Worker& w = it->second;
  if (w.state != Worker::State::kIdle) {
    return false;
  }
  return PendingDemand(w.job) > 0;
}

JobId Engine::TaskJob(CacheOwner task) const {
  auto it = workers_.find(task);
  return it == workers_.end() ? kInvalidJobId : it->second.job;
}

size_t Engine::DesiredProcessor(JobId id) const {
  const JobState& js = job_state(id);
  for (CacheOwner wid : js.idle_workers) {
    const Worker& w = worker(wid);
    if (w.last_processor() != kNoProcessor) {
      return w.last_processor();
    }
  }
  return kNoProcessor;
}

double Engine::FairShare() const {
  const size_t n = std::max<size_t>(1, active_jobs_.size());
  return static_cast<double>(procs_.size()) / static_cast<double>(n);
}

double Engine::Priority(JobId id) const {
  const JobState& js = job_state(id);
  const double dt = ToSeconds(queue_.now() - js.credit_update);
  const double decayed = js.credit * std::exp(-dt / options_.credit_decay_s);
  // Credit accrues while the job holds fewer processors than its fair share
  // and is spent while it holds more.
  const double accrual = (FairShare() - static_cast<double>(js.allocation)) * dt;
  return decayed + accrual;
}

// --- Bookkeeping -------------------------------------------------------------

Worker& Engine::worker(CacheOwner id) {
  auto it = workers_.find(id);
  AFF_CHECK(it != workers_.end());
  return it->second;
}

const Worker& Engine::worker(CacheOwner id) const {
  auto it = workers_.find(id);
  AFF_CHECK(it != workers_.end());
  return it->second;
}

Engine::JobState& Engine::job_state(JobId id) {
  AFF_CHECK(id < jobs_.size());
  return jobs_[id];
}

const Engine::JobState& Engine::job_state(JobId id) const {
  AFF_CHECK(id < jobs_.size());
  return jobs_[id];
}

CacheOwner Engine::CreateWorker(JobId id) {
  const CacheOwner wid = next_worker_id_++;
  Worker w;
  w.id = wid;
  w.job = id;
  w.history_depth = options_.processor_history_depth;
  workers_.emplace(wid, w);
  return wid;
}

CacheOwner Engine::SelectWorker(JobId id, size_t proc, CacheOwner prefer) {
  JobState& js = job_state(id);
  if (prefer != kNoOwner) {
    auto it = workers_.find(prefer);
    if (it != workers_.end() && it->second.job == id && it->second.state == Worker::State::kIdle) {
      RemoveIdleWorker(js, prefer);
      return prefer;
    }
  }
  if (policy_->UsesAffinity()) {
    // Affinity-aware runtime: prefer the idle worker whose cache context
    // lives on this processor, then the most recently parked one (warmest).
    for (CacheOwner wid : js.idle_workers) {
      if (worker(wid).HasAffinityFor(proc)) {
        RemoveIdleWorker(js, wid);
        return wid;
      }
    }
    if (!js.idle_workers.empty()) {
      const CacheOwner wid = js.idle_workers.front();
      RemoveIdleWorker(js, wid);
      return wid;
    }
  } else if (!js.idle_workers.empty()) {
    // Oblivious runtime (plain Dynamic / plain TimeShare): pick any idle
    // worker, with no regard to where its cache context lives. A uniformly
    // random pick avoids the systematic worker/processor re-pairing a FIFO
    // pool accidentally produces.
    const size_t index = rng_.NextBounded(js.idle_workers.size());
    const CacheOwner wid = js.idle_workers[index];
    js.idle_workers.erase(js.idle_workers.begin() + static_cast<long>(index));
    return wid;
  }
  return CreateWorker(id);
}

void Engine::RemoveIdleWorker(JobState& js, CacheOwner id) {
  auto it = std::find(js.idle_workers.begin(), js.idle_workers.end(), id);
  AFF_CHECK(it != js.idle_workers.end());
  js.idle_workers.erase(it);
}

void Engine::ParkWorker(JobState& js, Worker& w) {
  w.state = Worker::State::kIdle;
  w.current.reset();
  w.processor = kNoProcessor;
  js.idle_workers.insert(js.idle_workers.begin(), w.id);
}

void Engine::UpdateAllocIntegral(JobId id) {
  JobState& js = job_state(id);
  if (js.job->stats().completion >= 0) {
    return;  // frozen at completion
  }
  const double dt = ToSeconds(queue_.now() - js.alloc_update);
  js.job->stats().alloc_integral_s += static_cast<double>(js.allocation) * dt;
  js.alloc_update = queue_.now();
}

void Engine::UpdateCredit(JobId id) {
  JobState& js = job_state(id);
  js.credit = Priority(id);
  js.credit_update = queue_.now();
}

void Engine::ChangeAllocation(JobId id, int delta) {
  JobState& js = job_state(id);
  UpdateCredit(id);
  UpdateAllocIntegral(id);
  AFF_CHECK(delta >= 0 || js.allocation >= static_cast<size_t>(-delta));
  js.allocation = static_cast<size_t>(static_cast<long>(js.allocation) + delta);
}

void Engine::RecordParallelism(JobId id) {
  JobState& js = job_state(id);
  if (js.par_hist == nullptr) {
    return;
  }
  const double dt = ToSeconds(queue_.now() - js.par_update);
  if (dt > 0.0) {
    js.par_hist->Add(js.running_workers, dt);
  }
  js.par_update = queue_.now();
}

void Engine::SetRunningWorkers(JobId id, int delta) {
  JobState& js = job_state(id);
  RecordParallelism(id);
  AFF_CHECK(delta >= 0 || js.running_workers >= static_cast<size_t>(-delta));
  js.running_workers = static_cast<size_t>(static_cast<long>(js.running_workers) + delta);
}

// --- Pending reassignment ----------------------------------------------------

void Engine::Emit(TraceEventKind kind, size_t proc, JobId id, CacheOwner worker_id,
                  bool affine) {
  if (trace_ == nullptr) {
    return;
  }
  trace_->Record(TraceEvent{.when = queue_.now(),
                            .kind = kind,
                            .proc = proc,
                            .job = id,
                            .worker = worker_id,
                            .affine = affine});
}

void Engine::SetPending(size_t proc, JobId id, CacheOwner prefer) {
  ProcState& ps = procs_[proc];
  AFF_CHECK(ps.running != kNoOwner || ps.switching);
  if (ps.pending_valid) {
    ClearPending(proc);
  }
  ps.pending_valid = true;
  ps.pending_job = id;
  ps.pending_prefer = prefer;
  ps.willing = false;
  job_state(id).pending_incoming++;
  job_state(ps.holder).pending_outgoing++;
}

void Engine::ClearPending(size_t proc) {
  ProcState& ps = procs_[proc];
  AFF_CHECK(ps.pending_valid);
  JobState& to = job_state(ps.pending_job);
  AFF_CHECK(to.pending_incoming > 0);
  to.pending_incoming--;
  JobState& from = job_state(ps.holder);
  AFF_CHECK(from.pending_outgoing > 0);
  from.pending_outgoing--;
  ps.pending_valid = false;
  ps.pending_job = kInvalidJobId;
  ps.pending_prefer = kNoOwner;
}

// --- Decisions ---------------------------------------------------------------

void Engine::ApplyDecision(const PolicyDecision& decision) {
  if (decision.targets.has_value()) {
    Reconcile(*decision.targets);
  }
  for (const Assignment& a : decision.assignments) {
    AssignProcessor(a);
  }
}

void Engine::Reconcile(const std::map<JobId, size_t>& targets) {
  // Phase 1: release surplus processors.
  std::vector<size_t> preempt_list;
  for (JobId id : active_jobs_) {
    JobState& js = job_state(id);
    auto it = targets.find(id);
    const size_t target = it == targets.end() ? 0 : it->second;
    const size_t committed = js.allocation + js.pending_incoming;
    const size_t effective = committed > js.pending_outgoing ? committed - js.pending_outgoing : 0;
    size_t excess = effective > target ? effective - target : 0;
    // Idle (holding) processors go first: releasing them costs nothing.
    for (size_t p = 0; p < procs_.size() && excess > 0; ++p) {
      ProcState& ps = procs_[p];
      if (ps.holder == id && ps.holding != kNoOwner && !ps.pending_valid) {
        ReleaseFromHolder(p);
        --excess;
      }
    }
    for (size_t p = 0; p < procs_.size() && excess > 0; ++p) {
      ProcState& ps = procs_[p];
      if (ps.holder == id && !ps.pending_valid && (ps.running != kNoOwner || ps.switching)) {
        preempt_list.push_back(p);
        --excess;
      }
    }
  }

  // Phase 2: satisfy deficits, free processors first (cheap), then the
  // preemption list (takes effect at chunk boundaries).
  size_t preempt_cursor = 0;
  for (JobId id : active_jobs_) {
    JobState& js = job_state(id);
    auto it = targets.find(id);
    const size_t target = it == targets.end() ? 0 : it->second;
    const size_t committed = js.allocation + js.pending_incoming;
    const size_t effective = committed > js.pending_outgoing ? committed - js.pending_outgoing : 0;
    size_t deficit = target > effective ? target - effective : 0;
    for (size_t p = 0; p < procs_.size() && deficit > 0; ++p) {
      if (procs_[p].holder == kInvalidJobId && !procs_[p].switching) {
        StartSwitch(p, id, kNoOwner);
        --deficit;
      }
    }
    while (deficit > 0 && preempt_cursor < preempt_list.size()) {
      SetPending(preempt_list[preempt_cursor++], id, kNoOwner);
      --deficit;
    }
  }
}

void Engine::AssignProcessor(const Assignment& a) {
  AFF_CHECK(a.proc < procs_.size());
  AFF_CHECK(a.job < jobs_.size());
  ProcState& ps = procs_[a.proc];
  JobState& to = job_state(a.job);
  if (!to.active) {
    return;
  }
  if (ps.holder == a.job) {
    // Rescind a pending takeaway; otherwise nothing to do — the job already
    // holds this processor.
    if (ps.pending_valid) {
      ClearPending(a.proc);
    }
    return;
  }
  if (ps.running != kNoOwner || ps.switching) {
    SetPending(a.proc, a.job, a.prefer_task);
    return;
  }
  if (ps.holder != kInvalidJobId) {
    ReleaseFromHolder(a.proc);
  }
  StartSwitch(a.proc, a.job, a.prefer_task);
}

// --- Mechanics ---------------------------------------------------------------

void Engine::ReleaseFromHolder(size_t proc) {
  ProcState& ps = procs_[proc];
  AFF_CHECK(ps.holder != kInvalidJobId);
  AFF_CHECK(ps.holding != kNoOwner);
  JobState& js = job_state(ps.holder);
  js.job->stats().waste_s += ToSeconds(queue_.now() - ps.hold_start);
  if (ps.yield_timer != kInvalidEventId) {
    queue_.Cancel(ps.yield_timer);
    ps.yield_timer = kInvalidEventId;
  }
  Worker& w = worker(ps.holding);
  ParkWorker(js, w);
  Emit(TraceEventKind::kRelease, proc, ps.holder, w.id);
  Bump(m_.releases);
  Bump(m_.waste_ns, static_cast<double>(queue_.now() - ps.hold_start));
  ChangeAllocation(ps.holder, -1);
  ps.holder = kInvalidJobId;
  ps.holding = kNoOwner;
  ps.willing = false;
}

void Engine::StartSwitch(size_t proc, JobId to_job, CacheOwner prefer) {
  ProcState& ps = procs_[proc];
  AFF_CHECK(ps.holder == kInvalidJobId);
  AFF_CHECK(!ps.switching && ps.running == kNoOwner && ps.holding == kNoOwner);
  AFF_CHECK(!ps.pending_valid);
  JobState& js = job_state(to_job);
  AFF_CHECK(js.active);
  ps.holder = to_job;
  ps.switching = true;
  ps.willing = false;
  ps.dispatch_prefer = prefer;
  js.switching_in++;
  ChangeAllocation(to_job, +1);
  js.job->stats().switch_s += ToSeconds(machine_.config().SwitchCost());
  Emit(TraceEventKind::kSwitchStart, proc, to_job);
  Bump(m_.switches);
  Bump(m_.switch_time_ns, static_cast<double>(machine_.config().SwitchCost()));
  queue_.ScheduleAfter(machine_.config().SwitchCost(), [this, proc] { OnSwitchDone(proc); });
}

void Engine::OnSwitchDone(size_t proc) {
  ProcState& ps = procs_[proc];
  AFF_CHECK(ps.switching);
  ps.switching = false;
  JobState& js = job_state(ps.holder);
  AFF_CHECK(js.switching_in > 0);
  js.switching_in--;

  if (ps.pending_valid) {
    // Retargeted while the switch was in flight: switch again.
    const JobId to = ps.pending_job;
    const CacheOwner prefer = ps.pending_prefer;
    ClearPending(proc);
    const JobId from = ps.holder;
    ChangeAllocation(from, -1);
    ps.holder = kInvalidJobId;
    if (job_state(to).active) {
      StartSwitch(proc, to, prefer);
    } else if (jobs_remaining_ > 0) {
      ApplyDecision(policy_->OnProcessorAvailable(*this, proc));
    }
    return;
  }

  if (!js.active) {
    // The job completed while this switch was in flight.
    ChangeAllocation(ps.holder, -1);
    ps.holder = kInvalidJobId;
    if (jobs_remaining_ > 0) {
      ApplyDecision(policy_->OnProcessorAvailable(*this, proc));
    }
    return;
  }
  DispatchWorker(proc);
}

void Engine::DispatchWorker(size_t proc) {
  ProcState& ps = procs_[proc];
  const JobId id = ps.holder;
  JobState& js = job_state(id);
  const CacheOwner prefer = ps.dispatch_prefer;
  ps.dispatch_prefer = kNoOwner;

  const CacheOwner wid = SelectWorker(id, proc, prefer);
  Worker& w = worker(wid);

  // This is a reallocation the job experiences; record whether the task
  // landed where its cache context lives.
  JobStats& st = js.job->stats();
  st.reallocations++;
  const bool affine = w.HasAffinityFor(proc);
  if (affine) {
    st.affinity_dispatches++;
    Bump(m_.dispatches_affine);
  }
  Bump(m_.dispatches);
  Bump(js.metric_reallocations);
  Emit(TraceEventKind::kDispatch, proc, id, wid, affine);
  machine_.processor(proc).RecordDispatch(wid);
  w.processor = proc;
  w.RecordPlacement(proc);

  if (policy_->Quantum() > 0) {
    if (ps.quantum_timer != kInvalidEventId) {
      queue_.Cancel(ps.quantum_timer);
    }
    ps.quantum_timer =
        queue_.ScheduleAfter(policy_->Quantum(), [this, proc] { OnQuantumTimer(proc); });
  }

  if (js.job->HasReadyThread()) {
    w.current = js.job->PopReadyThread();
    w.state = Worker::State::kRunning;
    ps.running = wid;
    SetRunningWorkers(id, +1);
    StartChunk(proc);
    // The job may still have unmet demand beyond this processor.
    RequestLoop(id);
  } else {
    EnterHolding(proc, wid);
  }
}

void Engine::StartChunk(size_t proc) {
  ProcState& ps = procs_[proc];
  AFF_CHECK(ps.running != kNoOwner);
  Worker& w = worker(ps.running);
  JobState& js = job_state(w.job);
  AFF_CHECK(w.current.has_value());
  const SimDuration work = std::min(options_.chunk_quantum, w.current->remaining);
  AFF_CHECK(work > 0);

  // Sibling workers of the same job on other processors, for coherence
  // invalidations (collected only when the application shares writable data).
  std::vector<Machine::SiblingPlacement> siblings;
  const std::vector<Machine::SiblingPlacement>* siblings_ptr = nullptr;
  if (js.profile->working_set.shared_write_per_s > 0.0) {
    for (size_t p = 0; p < procs_.size(); ++p) {
      if (p != proc && procs_[p].holder == w.job && procs_[p].running != kNoOwner) {
        siblings.push_back(Machine::SiblingPlacement{p, procs_[p].running});
      }
    }
    siblings_ptr = &siblings;
  }

  const Machine::ChunkExecution exec = machine_.ExecuteChunk(
      queue_.now(), proc, w.id, js.profile->working_set, work, siblings_ptr);
  SimDuration reload_stall = 0;
  SimDuration steady_stall = 0;
  const double total_misses = exec.reload_misses + exec.steady_misses;
  if (total_misses > 0.0) {
    reload_stall = static_cast<SimDuration>(static_cast<double>(exec.stall) *
                                            (exec.reload_misses / total_misses));
    steady_stall = exec.stall - reload_stall;
  }
  queue_.ScheduleAfter(exec.wall, [this, proc, work, reload_stall, steady_stall] {
    OnChunkDone(proc, work, reload_stall, steady_stall);
  });
}

void Engine::OnChunkDone(size_t proc, SimDuration work_done, SimDuration reload_stall,
                         SimDuration steady_stall) {
  ProcState& ps = procs_[proc];
  AFF_CHECK(ps.running != kNoOwner);
  Worker& w = worker(ps.running);
  const JobId id = w.job;
  JobState& js = job_state(id);
  JobStats& st = js.job->stats();

  st.useful_work_s += ToSeconds(machine_.config().ComputeTime(work_done));
  st.reload_stall_s += ToSeconds(reload_stall);
  st.steady_stall_s += ToSeconds(steady_stall);
  Bump(m_.chunks);
  Bump(m_.reload_stall_ns, static_cast<double>(reload_stall));
  Bump(m_.steady_stall_ns, static_cast<double>(steady_stall));
  Bump(js.metric_reload_stall_ns, static_cast<double>(reload_stall));
  if (m_.chunk_wall_us != nullptr) {
    m_.chunk_wall_us->Observe(
        ToMicroseconds(machine_.config().ComputeTime(work_done) + reload_stall + steady_stall));
    if (reload_stall > 0) {
      m_.reload_stall_us->Observe(ToMicroseconds(reload_stall));
    }
  }

  AFF_CHECK(w.current.has_value());
  w.current->remaining -= work_done;
  const bool thread_finished = w.current->remaining <= 0;

  // Drop reassignments whose target job has since completed.
  if (ps.pending_valid && !job_state(ps.pending_job).active) {
    ClearPending(proc);
  }

  size_t newly_ready = 0;
  if (thread_finished) {
    const size_t node = w.current->node;
    w.current.reset();
    Emit(TraceEventKind::kThreadComplete, proc, id, w.id);
    Bump(m_.thread_completions);
    newly_ready = js.job->CompleteThread(node);
    // The worker's next thread reuses only part of its cache footprint.
    machine_.processor(proc).cache().ReplaceOwnerData(w.id, js.profile->thread_overlap);
  }

  if (ps.pending_valid) {
    // Preemption takes effect at this chunk boundary.
    if (!thread_finished) {
      js.job->PushPreemptedThread(*w.current);
    }
    Emit(TraceEventKind::kPreempt, proc, id, w.id);
    Bump(m_.preempts);
    SetRunningWorkers(id, -1);
    ParkWorker(js, w);
    ps.running = kNoOwner;
    const JobId to = ps.pending_job;
    const CacheOwner prefer = ps.pending_prefer;
    ClearPending(proc);
    ChangeAllocation(id, -1);
    ps.holder = kInvalidJobId;
    StartSwitch(proc, to, prefer);
    if (thread_finished && js.job->Finished()) {
      // The job's last thread completed exactly at the preemption boundary.
      HandleJobCompletion(id, proc);
    } else {
      // The preempted thread (and any threads its completion enabled) may
      // leave the job with unmet demand it must advertise.
      NotifyNewWork(id);
    }
    return;
  }

  if (!thread_finished) {
    StartChunk(proc);
    return;
  }

  if (js.job->Finished()) {
    SetRunningWorkers(id, -1);
    ParkWorker(js, w);
    ps.running = kNoOwner;
    ChangeAllocation(id, -1);
    ps.holder = kInvalidJobId;
    ps.willing = false;
    HandleJobCompletion(id, proc);
    return;
  }

  if (js.job->HasReadyThread()) {
    // Same worker, same processor: picking up the next thread is not a
    // reallocation.
    w.current = js.job->PopReadyThread();
    StartChunk(proc);
    if (newly_ready > 1) {
      NotifyNewWork(id);
    }
    return;
  }

  // No work anywhere in the job for this worker: hold the processor and
  // (after the policy's yield delay) advertise it.
  SetRunningWorkers(id, -1);
  ps.running = kNoOwner;
  EnterHolding(proc, w.id);
}

void Engine::EnterHolding(size_t proc, CacheOwner worker_id) {
  ProcState& ps = procs_[proc];
  Worker& w = worker(worker_id);
  AFF_CHECK(w.processor == proc);
  ps.holding = worker_id;
  ps.running = kNoOwner;
  ps.willing = false;
  ps.hold_start = queue_.now();
  w.state = Worker::State::kHolding;
  w.current.reset();
  Emit(TraceEventKind::kHold, proc, ps.holder, worker_id);
  Bump(m_.holds);
  const SimDuration delay = policy_->YieldDelay();
  if (delay <= 0) {
    OnYieldTimer(proc);
  } else {
    ps.yield_timer = queue_.ScheduleAfter(delay, [this, proc] { OnYieldTimer(proc); });
  }
}

void Engine::OnYieldTimer(size_t proc) {
  ProcState& ps = procs_[proc];
  ps.yield_timer = kInvalidEventId;
  if (ps.holding == kNoOwner || ps.pending_valid) {
    return;
  }
  ps.willing = true;
  Emit(TraceEventKind::kYield, proc, ps.holder, ps.holding);
  Bump(m_.yields);
  ApplyDecision(policy_->OnProcessorAvailable(*this, proc));
}

void Engine::OnQuantumTimer(size_t proc) {
  ProcState& ps = procs_[proc];
  ps.quantum_timer = kInvalidEventId;
  if (ps.holder == kInvalidJobId || jobs_remaining_ == 0) {
    return;
  }
  ApplyDecision(policy_->OnQuantumExpiry(*this, proc));
  // Keep the clock ticking while the processor stays held.
  if (procs_[proc].holder != kInvalidJobId && policy_->Quantum() > 0) {
    ps.quantum_timer =
        queue_.ScheduleAfter(policy_->Quantum(), [this, proc] { OnQuantumTimer(proc); });
  }
}

void Engine::OnJobArrival(JobId id) {
  JobState& js = job_state(id);
  js.active = true;
  js.job->stats().arrival = queue_.now();
  js.credit_update = queue_.now();
  js.alloc_update = queue_.now();
  js.par_update = queue_.now();
  active_jobs_.push_back(id);
  Emit(TraceEventKind::kJobArrival, SIZE_MAX, id);
  Bump(m_.job_arrivals);
  if (m_.active_jobs != nullptr) {
    m_.active_jobs->Set(static_cast<double>(active_jobs_.size()));
  }
  ApplyDecision(policy_->OnJobArrival(*this, id));
  RequestLoop(id);
}

void Engine::HandleJobCompletion(JobId id, size_t completing_proc) {
  JobState& js = job_state(id);
  UpdateAllocIntegral(id);
  RecordParallelism(id);
  js.job->stats().completion = queue_.now();
  js.active = false;
  Emit(TraceEventKind::kJobCompletion, SIZE_MAX, id);
  auto it = std::find(active_jobs_.begin(), active_jobs_.end(), id);
  AFF_CHECK(it != active_jobs_.end());
  active_jobs_.erase(it);
  Bump(m_.job_completions);
  if (m_.active_jobs != nullptr) {
    m_.active_jobs->Set(static_cast<double>(active_jobs_.size()));
  }
  AFF_CHECK(jobs_remaining_ > 0);
  --jobs_remaining_;

  std::vector<size_t> freed = {completing_proc};
  for (size_t p = 0; p < procs_.size(); ++p) {
    ProcState& ps = procs_[p];
    if (ps.holder != id) {
      continue;
    }
    if (ps.holding != kNoOwner) {
      ReleaseFromHolder(p);
      freed.push_back(p);
    } else {
      // Switch in flight; OnSwitchDone notices the inactive holder and frees
      // the processor itself. Running chunks are impossible once the graph is
      // finished.
      AFF_CHECK(ps.switching);
    }
  }

  if (jobs_remaining_ == 0) {
    return;
  }
  ApplyDecision(policy_->OnJobDeparture(*this, id));
  for (size_t p : freed) {
    if (procs_[p].holder == kInvalidJobId && !procs_[p].switching) {
      ApplyDecision(policy_->OnProcessorAvailable(*this, p));
    }
  }
  // Survivors may have had unmet demand the departed job's processors can now
  // satisfy.
  for (JobId survivor : std::vector<JobId>(active_jobs_)) {
    RequestLoop(survivor);
  }
}

void Engine::NotifyNewWork(JobId id) {
  JobState& js = job_state(id);
  if (!js.active) {
    return;
  }
  // Held processors absorb new threads first — this is the yield-delay win:
  // no reallocation cost at all.
  for (size_t p = 0; p < procs_.size() && js.job->HasReadyThread(); ++p) {
    ProcState& ps = procs_[p];
    if (ps.holder != id || ps.holding == kNoOwner || ps.pending_valid) {
      continue;
    }
    js.job->stats().waste_s += ToSeconds(queue_.now() - ps.hold_start);
    Bump(m_.waste_ns, static_cast<double>(queue_.now() - ps.hold_start));
    if (ps.yield_timer != kInvalidEventId) {
      queue_.Cancel(ps.yield_timer);
      ps.yield_timer = kInvalidEventId;
    }
    ps.willing = false;
    Worker& w = worker(ps.holding);
    ps.holding = kNoOwner;
    ps.running = w.id;
    w.state = Worker::State::kRunning;
    w.current = js.job->PopReadyThread();
    SetRunningWorkers(id, +1);
    Emit(TraceEventKind::kResume, p, id, w.id);
    Bump(m_.resumes);
    StartChunk(p);
  }
  RequestLoop(id);
}

void Engine::RequestLoop(JobId id) {
  JobState& js = job_state(id);
  while (js.active && PendingDemand(id) > 0) {
    const size_t before = PendingDemand(id);
    const PolicyDecision decision = policy_->OnRequest(*this, id);
    if (decision.assignments.empty() && !decision.targets.has_value()) {
      break;
    }
    ApplyDecision(decision);
    if (PendingDemand(id) >= before) {
      break;  // no progress; avoid spinning
    }
  }
}

void Engine::DumpState() const {
  // Deadlock diagnostics go through the leveled logger: visible by default
  // (warn), and available on demand via AFFSCHED_LOG_LEVEL=debug from other
  // call sites without recompiling.
  const LogLevel level = LogLevel::kWarn;
  if (!LogEnabled(level)) {
    return;
  }
  Logf(level, "=== engine state at t=%lld ns ===", static_cast<long long>(queue_.now()));
  for (size_t p = 0; p < procs_.size(); ++p) {
    const ProcState& ps = procs_[p];
    Logf(level,
         "proc %zu: holder=%d running=%llu holding=%llu switching=%d willing=%d "
         "pending=%d->%d",
         p, ps.holder == kInvalidJobId ? -1 : static_cast<int>(ps.holder),
         static_cast<unsigned long long>(ps.running),
         static_cast<unsigned long long>(ps.holding), ps.switching ? 1 : 0, ps.willing ? 1 : 0,
         ps.pending_valid ? 1 : 0, ps.pending_valid ? static_cast<int>(ps.pending_job) : -1);
  }
  for (size_t j = 0; j < jobs_.size(); ++j) {
    const JobState& js = jobs_[j];
    Logf(level,
         "job %zu (%s): active=%d ready=%zu alloc=%zu in=%zu out=%zu switching_in=%zu "
         "demand=%zu remaining=%zu idle_workers=%zu",
         j, js.job->name().c_str(), js.active ? 1 : 0, js.job->ReadyCount(), js.allocation,
         js.pending_incoming, js.pending_outgoing, js.switching_in,
         PendingDemand(static_cast<JobId>(j)), js.job->graph().remaining(),
         js.idle_workers.size());
  }
}

}  // namespace affsched
