#include "src/engine/engine_core.h"

#include <algorithm>
#include <cmath>

#include "src/cache/partitioned.h"
#include "src/common/check.h"

namespace affsched {

EngineCore::EngineCore(const MachineConfig& machine_config, std::unique_ptr<Policy> policy_in,
                       uint64_t seed, const EngineOptions& options_in)
    : options(options_in), machine(machine_config), policy(std::move(policy_in)), rng(seed) {
  AFF_CHECK(policy != nullptr);
  AFF_CHECK(options.chunk_quantum > 0);
  procs.resize(machine.num_processors());
}

Worker& EngineCore::worker(CacheOwner id) {
  AFF_CHECK(HasWorker(id));
  return workers[id - 1];
}

const Worker& EngineCore::worker(CacheOwner id) const {
  AFF_CHECK(HasWorker(id));
  return workers[id - 1];
}

JobState& EngineCore::job_state(JobId id) {
  AFF_CHECK(id < jobs.size());
  return jobs[id];
}

const JobState& EngineCore::job_state(JobId id) const {
  AFF_CHECK(id < jobs.size());
  return jobs[id];
}

CacheOwner EngineCore::CreateWorker(JobId id) {
  const CacheOwner wid = next_worker_id++;
  Worker w;
  w.id = wid;
  w.job = id;
  w.history_depth = options.processor_history_depth;
  AFF_CHECK(wid == workers.size() + 1);
  workers.push_back(w);
  // Partitioned substrate: a worker inherits its job's color reservation in
  // every private cache, so wherever it lands its reloads and interference
  // are confined to the job's colors.
  if (machine.config().cache_model == CacheModelKind::kPartitioned) {
    const uint64_t mask = job_state(id).color_mask;
    for (size_t p = 0; p < machine.num_processors(); ++p) {
      static_cast<PartitionedCacheModel&>(machine.processor(p).cache())
          .ReserveColors(wid, mask);
    }
  }
  return wid;
}

size_t EngineCore::EffectiveAllocation(JobId id) const {
  const JobState& js = job_state(id);
  const size_t committed = js.allocation + js.pending_incoming;
  return committed > js.pending_outgoing ? committed - js.pending_outgoing : 0;
}

size_t EngineCore::PendingDemand(JobId id) const {
  const JobState& js = job_state(id);
  if (!js.active) {
    return 0;
  }
  const size_t incoming = js.pending_incoming + js.switching_in;
  const size_t ready = js.job->ReadyCount();
  if (ready <= incoming) {
    return 0;
  }
  const size_t committed = js.allocation + js.pending_incoming;
  const size_t outgoing = js.pending_outgoing;
  const size_t effective = committed > outgoing ? committed - outgoing : 0;
  const size_t cap = js.job->max_parallelism();
  if (effective >= cap) {
    return 0;
  }
  return std::min(ready - incoming, cap - effective);
}

double EngineCore::FairShare() const {
  const size_t n = std::max<size_t>(1, active_jobs.size());
  return static_cast<double>(procs.size()) / static_cast<double>(n);
}

double EngineCore::Priority(JobId id) const {
  const JobState& js = job_state(id);
  const double dt = ToSeconds(queue.now() - js.credit_update);
  const double decayed = js.credit * std::exp(-dt / options.credit_decay_s);
  // Credit accrues while the job holds fewer processors than its fair share
  // and is spent while it holds more.
  const double accrual = (FairShare() - static_cast<double>(js.allocation)) * dt;
  return decayed + accrual;
}

void EngineCore::Emit(TraceEventKind kind, size_t proc, JobId id, CacheOwner worker_id,
                      bool affine) {
  if (trace == nullptr) {
    return;
  }
  trace->Record(TraceEvent{.when = queue.now(),
                           .kind = kind,
                           .proc = proc,
                           .job = id,
                           .worker = worker_id,
                           .affine = affine});
}

}  // namespace affsched
