#include "src/engine/accounting.h"

#include <algorithm>
#include <string>

#include "src/common/check.h"

namespace affsched {

void Accounting::SetMetrics(MetricsRegistry* registry) {
  AFF_CHECK_MSG(!core_.running, "SetMetrics must be called before Run()");
  metrics_ = registry;
  m = MetricHandles{};
  if (registry == nullptr) {
    return;
  }
  m.job_arrivals = registry->FindOrCreateCounter("engine.job_arrivals");
  m.job_completions = registry->FindOrCreateCounter("engine.job_completions");
  m.dispatches = registry->FindOrCreateCounter("engine.dispatches");
  m.dispatches_affine = registry->FindOrCreateCounter("engine.dispatches_affine");
  m.resumes = registry->FindOrCreateCounter("engine.resumes");
  m.preempts = registry->FindOrCreateCounter("engine.preempts");
  m.switches = registry->FindOrCreateCounter("engine.switches");
  m.switch_time_ns = registry->FindOrCreateCounter("engine.switch_time_ns");
  m.holds = registry->FindOrCreateCounter("engine.holds");
  m.yields = registry->FindOrCreateCounter("engine.yields");
  m.releases = registry->FindOrCreateCounter("engine.releases");
  m.thread_completions = registry->FindOrCreateCounter("engine.thread_completions");
  m.chunks = registry->FindOrCreateCounter("engine.chunks");
  m.reload_stall_ns = registry->FindOrCreateCounter("engine.reload_stall_ns");
  m.steady_stall_ns = registry->FindOrCreateCounter("engine.steady_stall_ns");
  m.reload_llc_ns = registry->FindOrCreateCounter("engine.reload_llc_ns");
  m.reload_remote_ns = registry->FindOrCreateCounter("engine.reload_remote_ns");
  m.waste_ns = registry->FindOrCreateCounter("engine.waste_ns");
  for (size_t tier = 0; tier < kNumDistanceTiers; ++tier) {
    m.migrations[tier] = registry->FindOrCreateCounter(std::string("engine.migrations.") +
                                                       DistanceTierName(tier));
    m.steals[tier] =
        registry->FindOrCreateCounter(std::string("engine.steals.") + DistanceTierName(tier));
  }
  m.balance_migrations = registry->FindOrCreateCounter("engine.balance_migrations");
  m.deadline_misses = registry->FindOrCreateCounter("engine.deadline_misses");
  m.tardiness_ns = registry->FindOrCreateCounter("engine.tardiness_ns");
  m.active_jobs = registry->FindOrCreateGauge("engine.active_jobs");
  m.reload_stall_us =
      registry->FindOrCreateHistogram("engine.reload_stall_us", DefaultLatencyBucketsUs());
  m.chunk_wall_us =
      registry->FindOrCreateHistogram("engine.chunk_wall_us", DefaultLatencyBucketsUs());
}

void Accounting::ResolveJobMetrics() {
  if (metrics_ == nullptr) {
    return;
  }
  for (JobId id = 0; id < core_.jobs.size(); ++id) {
    ResolveJobMetricsFor(id);
  }
}

void Accounting::ResolveJobMetricsFor(JobId id) {
  if (metrics_ == nullptr) {
    return;
  }
  JobState& js = core_.jobs[id];
  const std::string prefix = "engine.job." + js.job->name() + "#" + std::to_string(id);
  js.metric_reallocations = metrics_->FindOrCreateCounter(prefix + ".reallocations");
  js.metric_reload_stall_ns = metrics_->FindOrCreateCounter(prefix + ".reload_stall_ns");
}

void Accounting::FinalizeMetrics() {
  if (metrics_ == nullptr) {
    return;
  }
  metrics_->FindOrCreateCounter("bus.transfers")->Add(core_.machine.bus().total_transfers());
  metrics_->FindOrCreateGauge("bus.peak_utilization")
      ->Set(core_.machine.bus().peak_utilization());
  metrics_->FindOrCreateGauge("bus.utilization")
      ->Set(core_.machine.bus().UtilizationAt(core_.queue.now()));

  // Affinity efficiency: how much of the machine time jobs consumed went to
  // rebuilding cache context, and how often tasks landed on their context.
  double useful = 0.0, reload = 0.0, steady = 0.0, switching = 0.0;
  uint64_t dispatches = 0, affine = 0;
  for (const JobState& js : core_.jobs) {
    const JobStats& st = js.job->stats();
    useful += st.useful_work_s;
    reload += st.reload_stall_s;
    steady += st.steady_stall_s;
    switching += st.switch_s;
    dispatches += st.reallocations;
    affine += st.affinity_dispatches;
  }
  const double busy = useful + reload + steady + switching;
  metrics_->FindOrCreateGauge("engine.affinity.reload_transient_fraction")
      ->Set(busy > 0.0 ? reload / busy : 0.0);
  metrics_->FindOrCreateGauge("engine.affinity.affine_fraction")
      ->Set(dispatches > 0 ? static_cast<double>(affine) / static_cast<double>(dispatches)
                           : 0.0);
}

void Accounting::SetSpanCollector(JobSpanCollector* spans) {
  AFF_CHECK_MSG(!core_.running, "SetSpanCollector must be called before Run()");
  spans_ = spans;
}

void Accounting::NoteJobArrival(JobId id) {
  Bump(m.job_arrivals);
  if (spans_ != nullptr) {
    const JobState& js = core_.job_state(id);
    spans_->OnArrival(id, core_.queue.now(), js.job->stats().queue_wait_s);
  }
}

void Accounting::NoteJobCompletion(JobId id) {
  Bump(m.job_completions);
  JobState& js = core_.job_state(id);
  const RtParams& rt = js.profile->rt;
  if (rt.Active()) {
    // The deadline is relative to service start (stats().arrival); open-system
    // queue wait is accounted separately, matching the sojourn the rt sweep
    // compares against.
    JobStats& st = js.job->stats();
    const SimTime deadline = st.arrival + Seconds(rt.deadline_s);
    const SimTime now = core_.queue.now();
    if (now > deadline) {
      st.deadline_misses = 1;
      st.tardiness_s = ToSeconds(now - deadline);
      Bump(m.deadline_misses);
      Bump(m.tardiness_ns, static_cast<double>(now - deadline));
    }
  }
  if (spans_ != nullptr) {
    spans_->OnCompletion(id, core_.queue.now());
  }
}

void Accounting::ChargeChunk(JobState& js, SimDuration work_done, SimDuration reload_stall,
                             SimDuration steady_stall) {
  JobStats& st = js.job->stats();
  st.useful_work_s += ToSeconds(core_.machine.config().ComputeTime(work_done));
  st.reload_stall_s += ToSeconds(reload_stall);
  st.steady_stall_s += ToSeconds(steady_stall);
  // Worst single-chunk reload transient: the latency spike partitioning
  // exists to bound.
  st.worst_reload_s = std::max(st.worst_reload_s, ToSeconds(reload_stall));
  Bump(m.chunks);
  Bump(m.reload_stall_ns, static_cast<double>(reload_stall));
  Bump(m.steady_stall_ns, static_cast<double>(steady_stall));
  Bump(js.metric_reload_stall_ns, static_cast<double>(reload_stall));
  if (m.chunk_wall_us != nullptr) {
    m.chunk_wall_us->Observe(ToMicroseconds(core_.machine.config().ComputeTime(work_done) +
                                            reload_stall + steady_stall));
    if (reload_stall > 0) {
      m.reload_stall_us->Observe(ToMicroseconds(reload_stall));
    }
  }
}

void Accounting::ChargeReloadTiers(JobState& js, SimDuration reload_llc,
                                   SimDuration reload_remote) {
  if (reload_llc == 0 && reload_remote == 0) {
    return;
  }
  JobStats& st = js.job->stats();
  st.reload_llc_s += ToSeconds(reload_llc);
  st.reload_remote_s += ToSeconds(reload_remote);
  Bump(m.reload_llc_ns, static_cast<double>(reload_llc));
  Bump(m.reload_remote_ns, static_cast<double>(reload_remote));
}

void Accounting::ChargeSwitch(JobState& js) {
  js.job->stats().switch_s += ToSeconds(core_.machine.config().SwitchCost());
  Bump(m.switches);
  Bump(m.switch_time_ns, static_cast<double>(core_.machine.config().SwitchCost()));
}

void Accounting::ChargeWaste(JobState& js, SimDuration held) {
  js.job->stats().waste_s += ToSeconds(held);
  Bump(m.waste_ns, static_cast<double>(held));
}

void Accounting::RecordDispatch(JobState& js, size_t proc, bool affine, size_t tier) {
  if (spans_ != nullptr) {
    spans_->OnDispatch(js.job->id(), proc, core_.queue.now(), tier, affine);
  }
  JobStats& st = js.job->stats();
  st.reallocations++;
  if (affine) {
    st.affinity_dispatches++;
    Bump(m.dispatches_affine);
  }
  if (tier != kNoMigrationTier) {
    AFF_CHECK(tier < kNumDistanceTiers);
    switch (tier) {
      case 0:
        st.migrations_same_core++;
        break;
      case 1:
        st.migrations_same_cluster++;
        break;
      case 2:
        st.migrations_same_node++;
        break;
      default:
        st.migrations_cross_node++;
        break;
    }
    Bump(m.migrations[tier]);
  }
  Bump(m.dispatches);
  Bump(js.metric_reallocations);
}

void Accounting::RecordSteal(JobState& js, size_t tier) {
  AFF_CHECK(tier > 0 && tier < kNumDistanceTiers);
  JobStats& st = js.job->stats();
  switch (tier) {
    case 1:
      st.steals_same_cluster++;
      break;
    case 2:
      st.steals_same_node++;
      break;
    default:
      st.steals_cross_node++;
      break;
  }
  Bump(m.steals[tier]);
}

void Accounting::RecordBalanceMigration(JobState& js) {
  js.job->stats().balance_migrations++;
  Bump(m.balance_migrations);
}

void Accounting::UpdateAllocIntegral(JobId id) {
  JobState& js = core_.job_state(id);
  if (js.job->stats().completion >= 0) {
    return;  // frozen at completion
  }
  const double dt = ToSeconds(core_.queue.now() - js.alloc_update);
  js.job->stats().alloc_integral_s += static_cast<double>(js.allocation) * dt;
  js.alloc_update = core_.queue.now();
}

void Accounting::UpdateCredit(JobId id) {
  JobState& js = core_.job_state(id);
  js.credit = core_.Priority(id);
  js.credit_update = core_.queue.now();
}

void Accounting::ChangeAllocation(JobId id, int delta) {
  JobState& js = core_.job_state(id);
  UpdateCredit(id);
  UpdateAllocIntegral(id);
  AFF_CHECK(delta >= 0 || js.allocation >= static_cast<size_t>(-delta));
  js.allocation = static_cast<size_t>(static_cast<long>(js.allocation) + delta);
}

void Accounting::RecordParallelism(JobId id) {
  JobState& js = core_.job_state(id);
  if (js.par_hist == nullptr) {
    return;
  }
  const double dt = ToSeconds(core_.queue.now() - js.par_update);
  if (dt > 0.0) {
    js.par_hist->Add(js.running_workers, dt);
  }
  js.par_update = core_.queue.now();
}

void Accounting::SetRunningWorkers(JobId id, int delta) {
  JobState& js = core_.job_state(id);
  RecordParallelism(id);
  AFF_CHECK(delta >= 0 || js.running_workers >= static_cast<size_t>(-delta));
  js.running_workers = static_cast<size_t>(static_cast<long>(js.running_workers) + delta);
}

}  // namespace affsched
