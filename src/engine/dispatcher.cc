#include "src/engine/dispatcher.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/engine/allocator_protocol.h"

namespace affsched {

CacheOwner Dispatcher::SelectWorker(JobId id, size_t proc, CacheOwner prefer) {
  JobState& js = core_.job_state(id);
  if (prefer != kNoOwner && core_.HasWorker(prefer)) {
    Worker& w = core_.worker(prefer);
    if (w.job == id && w.state == Worker::State::kIdle) {
      RemoveIdleWorker(js, prefer);
      return prefer;
    }
  }
  if (core_.policy->UsesAffinity()) {
    // Affinity-aware runtime: prefer the idle worker whose cache context
    // lives on this processor, then the most recently parked one (warmest).
    for (CacheOwner wid : js.idle_workers) {
      if (core_.worker(wid).HasAffinityFor(proc)) {
        RemoveIdleWorker(js, wid);
        return wid;
      }
    }
    if (!js.idle_workers.empty()) {
      const CacheOwner wid = js.idle_workers.front();
      RemoveIdleWorker(js, wid);
      return wid;
    }
  } else if (!js.idle_workers.empty()) {
    // Oblivious runtime (plain Dynamic / plain TimeShare): pick any idle
    // worker, with no regard to where its cache context lives. A uniformly
    // random pick avoids the systematic worker/processor re-pairing a FIFO
    // pool accidentally produces.
    const size_t index = core_.rng.NextBounded(js.idle_workers.size());
    const CacheOwner wid = js.idle_workers[index];
    js.idle_workers.erase(js.idle_workers.begin() + static_cast<long>(index));
    return wid;
  }
  return core_.CreateWorker(id);
}

void Dispatcher::RemoveIdleWorker(JobState& js, CacheOwner id) {
  auto it = std::find(js.idle_workers.begin(), js.idle_workers.end(), id);
  AFF_CHECK(it != js.idle_workers.end());
  js.idle_workers.erase(it);
}

void Dispatcher::ParkWorker(JobState& js, Worker& w) {
  w.state = Worker::State::kIdle;
  w.current.reset();
  w.processor = kNoProcessor;
  js.idle_workers.insert(js.idle_workers.begin(), w.id);
}

void Dispatcher::DispatchWorker(size_t proc) {
  ProcState& ps = core_.procs[proc];
  const JobId id = ps.holder;
  JobState& js = core_.job_state(id);
  const CacheOwner prefer = ps.dispatch_prefer;
  ps.dispatch_prefer = kNoOwner;

  const CacheOwner wid = SelectWorker(id, proc, prefer);
  Worker& w = core_.worker(wid);

  // This is a reallocation the job experiences; record whether the task
  // landed where its cache context lives, and how far it migrated.
  const bool affine = w.HasAffinityFor(proc);
  const size_t prev = w.last_processor();
  const size_t tier = prev == kNoProcessor
                          ? kNoMigrationTier
                          : core_.machine.topology().TierBetween(prev, proc);
  acct_.RecordDispatch(js, proc, affine, tier);
  core_.Emit(TraceEventKind::kDispatch, proc, id, wid, affine);
  core_.machine.processor(proc).RecordDispatch(wid);
  w.processor = proc;
  w.RecordPlacement(proc);

  if (core_.policy->Quantum() > 0) {
    if (ps.quantum_timer != kInvalidEventId) {
      core_.queue.Cancel(ps.quantum_timer);
    }
    ps.quantum_timer = core_.queue.ScheduleAfter(
        core_.policy->Quantum(), [alloc = alloc_, proc] { alloc->OnQuantumTimer(proc); });
  }

  if (js.job->HasReadyThread()) {
    w.current = js.job->PopReadyThread();
    w.state = Worker::State::kRunning;
    ps.running = wid;
    acct_.SetRunningWorkers(id, +1);
    StartChunk(proc);
    // The job may still have unmet demand beyond this processor.
    alloc_->RequestLoop(id);
  } else {
    alloc_->EnterHolding(proc, wid);
  }
}

void Dispatcher::StartChunk(size_t proc) {
  ProcState& ps = core_.procs[proc];
  AFF_CHECK(ps.running != kNoOwner);
  Worker& w = core_.worker(ps.running);
  JobState& js = core_.job_state(w.job);
  AFF_CHECK(w.current.has_value());
  const SimDuration work = std::min(core_.options.chunk_quantum, w.current->remaining);
  AFF_CHECK(work > 0);

  // Sibling workers of the same job on other processors, for coherence
  // invalidations (collected only when the application shares writable data).
  std::vector<Machine::SiblingPlacement> siblings;
  const std::vector<Machine::SiblingPlacement>* siblings_ptr = nullptr;
  if (js.profile->working_set.shared_write_per_s > 0.0) {
    for (size_t p = 0; p < core_.procs.size(); ++p) {
      if (p != proc && core_.procs[p].holder == w.job && core_.procs[p].running != kNoOwner) {
        siblings.push_back(Machine::SiblingPlacement{p, core_.procs[p].running});
      }
    }
    siblings_ptr = &siblings;
  }

  const Machine::ChunkExecution exec = core_.machine.ExecuteChunk(
      core_.queue.now(), proc, w.id, js.profile->working_set, work, siblings_ptr);
  SimDuration reload_stall = 0;
  SimDuration steady_stall = 0;
  if (exec.tiered) {
    // Hierarchical topologies price the split at the machine (per-source
    // costs differ), so use it directly. The tier attribution is charged
    // now rather than carried in the completion event: chunks always run to
    // completion, so the job's totals are identical either way.
    reload_stall = exec.reload_stall;
    steady_stall = exec.steady_stall;
    acct_.ChargeReloadTiers(js, exec.reload_llc, exec.reload_remote);
  } else {
    const double total_misses = exec.reload_misses + exec.steady_misses;
    if (total_misses > 0.0) {
      reload_stall = static_cast<SimDuration>(static_cast<double>(exec.stall) *
                                              (exec.reload_misses / total_misses));
      steady_stall = exec.stall - reload_stall;
    }
  }
  core_.queue.ScheduleAfter(exec.wall,
                            [this, proc, work, reload_stall, steady_stall] {
                              OnChunkDone(proc, work, reload_stall, steady_stall);
                            });
}

void Dispatcher::OnChunkDone(size_t proc, SimDuration work_done, SimDuration reload_stall,
                             SimDuration steady_stall) {
  ProcState& ps = core_.procs[proc];
  AFF_CHECK(ps.running != kNoOwner);
  Worker& w = core_.worker(ps.running);
  const JobId id = w.job;
  JobState& js = core_.job_state(id);

  acct_.ChargeChunk(js, work_done, reload_stall, steady_stall);

  AFF_CHECK(w.current.has_value());
  w.current->remaining -= work_done;
  const bool thread_finished = w.current->remaining <= 0;

  // Drop reassignments whose target job has since completed.
  if (ps.pending_valid && !core_.job_state(ps.pending_job).active) {
    alloc_->ClearPending(proc);
  }

  size_t newly_ready = 0;
  if (thread_finished) {
    const size_t node = w.current->node;
    w.current.reset();
    core_.Emit(TraceEventKind::kThreadComplete, proc, id, w.id);
    Bump(acct_.m.thread_completions);
    newly_ready = js.job->CompleteThread(node);
    // The worker's next thread reuses only part of its cache footprint.
    core_.machine.processor(proc).cache().ReplaceOwnerData(w.id, js.profile->thread_overlap);
  }

  if (ps.pending_valid) {
    // Preemption takes effect at this chunk boundary.
    if (!thread_finished) {
      js.job->PushPreemptedThread(*w.current);
    }
    core_.Emit(TraceEventKind::kPreempt, proc, id, w.id);
    Bump(acct_.m.preempts);
    acct_.SetRunningWorkers(id, -1);
    ParkWorker(js, w);
    ps.running = kNoOwner;
    const JobId to = ps.pending_job;
    const CacheOwner prefer = ps.pending_prefer;
    alloc_->ClearPending(proc);
    acct_.ChangeAllocation(id, -1);
    ps.holder = kInvalidJobId;
    alloc_->StartSwitch(proc, to, prefer);
    if (thread_finished && js.job->Finished()) {
      // The job's last thread completed exactly at the preemption boundary.
      alloc_->HandleJobCompletion(id, proc);
    } else {
      // The preempted thread (and any threads its completion enabled) may
      // leave the job with unmet demand it must advertise.
      alloc_->NotifyNewWork(id);
    }
    return;
  }

  if (!thread_finished) {
    StartChunk(proc);
    return;
  }

  if (js.job->Finished()) {
    acct_.SetRunningWorkers(id, -1);
    ParkWorker(js, w);
    ps.running = kNoOwner;
    acct_.ChangeAllocation(id, -1);
    ps.holder = kInvalidJobId;
    ps.willing = false;
    alloc_->HandleJobCompletion(id, proc);
    return;
  }

  if (js.job->HasReadyThread()) {
    // Same worker, same processor: picking up the next thread is not a
    // reallocation.
    w.current = js.job->PopReadyThread();
    StartChunk(proc);
    if (newly_ready > 1) {
      alloc_->NotifyNewWork(id);
    }
    return;
  }

  // No work anywhere in the job for this worker: hold the processor and
  // (after the policy's yield delay) advertise it.
  acct_.SetRunningWorkers(id, -1);
  ps.running = kNoOwner;
  alloc_->EnterHolding(proc, w.id);
}

}  // namespace affsched
