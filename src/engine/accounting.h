// Accounting: the one component that writes response-time-model terms and
// telemetry.
//
// Every term of the paper's response-time model — useful work, waste,
// #reallocations, %affinity, switch time, reload/steady stalls, the
// allocation integral — is charged through this class, so Engine, measure/
// and the telemetry exporters all read numbers with a single producer.
// It also owns the usage-credit priority state updates and the metric
// registry wiring (per-run and per-job counter handles).

#ifndef SRC_ENGINE_ACCOUNTING_H_
#define SRC_ENGINE_ACCOUNTING_H_

#include "src/engine/engine_core.h"
#include "src/telemetry/job_spans.h"
#include "src/telemetry/metrics.h"
#include "src/topology/topology.h"

namespace affsched {

// Tier value for a dispatch with no previous placement (nothing migrated).
inline constexpr size_t kNoMigrationTier = static_cast<size_t>(-1);

// Global metric handles, resolved once by SetMetrics. All nullptr while
// metrics are detached, making every Bump() a single-branch no-op.
struct MetricHandles {
  Counter* job_arrivals = nullptr;
  Counter* job_completions = nullptr;
  Counter* dispatches = nullptr;
  Counter* dispatches_affine = nullptr;
  Counter* resumes = nullptr;
  Counter* preempts = nullptr;
  Counter* switches = nullptr;
  Counter* switch_time_ns = nullptr;
  Counter* holds = nullptr;
  Counter* yields = nullptr;
  Counter* releases = nullptr;
  Counter* thread_completions = nullptr;
  Counter* chunks = nullptr;
  Counter* reload_stall_ns = nullptr;
  Counter* steady_stall_ns = nullptr;
  Counter* reload_llc_ns = nullptr;
  Counter* reload_remote_ns = nullptr;
  Counter* waste_ns = nullptr;
  // Reallocations by migration distance (engine.migrations.<tier-name>).
  Counter* migrations[kNumDistanceTiers] = {nullptr, nullptr, nullptr, nullptr};
  // Multi-queue steals by the distance tier crossed
  // (engine.steals.<tier-name>; tier 0 never fires — a same-processor pull is
  // a local-queue dispatch, not a steal) and balance-tick migrations.
  Counter* steals[kNumDistanceTiers] = {nullptr, nullptr, nullptr, nullptr};
  Counter* balance_migrations = nullptr;
  // Real-time terms: completions past their relative deadline, and the summed
  // lateness of those completions.
  Counter* deadline_misses = nullptr;
  Counter* tardiness_ns = nullptr;
  Gauge* active_jobs = nullptr;
  FixedHistogram* reload_stall_us = nullptr;
  FixedHistogram* chunk_wall_us = nullptr;
};

inline void Bump(Counter* counter, double delta = 1.0) {
  if (counter != nullptr) {
    counter->Add(delta);
  }
}

class Accounting {
 public:
  explicit Accounting(EngineCore& core) : core_(core) {}

  // --- Registry wiring -------------------------------------------------------

  // Attaches a metrics registry (nullptr detaches) and resolves the global
  // handles. Must not be called mid-run.
  void SetMetrics(MetricsRegistry* registry);
  MetricsRegistry* metrics() const { return metrics_; }
  // Creates the per-job counters (Run() start, when all jobs are known).
  void ResolveJobMetrics();
  // Creates the per-job counters for one job admitted mid-run (open-system
  // submission happens after Run() has resolved the initial set).
  void ResolveJobMetricsFor(JobId id);
  // End-of-run totals that are cheaper to read once than to stream: bus
  // transfer and peak-utilisation counters, plus the derived affinity-
  // efficiency gauges (reload-transient fraction of runtime, affine dispatch
  // fraction).
  void FinalizeMetrics();

  // Attaches a lifecycle span collector (nullptr detaches). Arrival,
  // dispatch and completion notifications flow to it; every site costs one
  // null check while detached. Must not be called mid-run.
  void SetSpanCollector(JobSpanCollector* spans);
  JobSpanCollector* spans() const { return spans_; }

  // --- Lifecycle notifications -----------------------------------------------

  // Job entered service (engine OnJobArrival): bumps the arrival counter and
  // opens the lifecycle span.
  void NoteJobArrival(JobId id);
  // Job left the system: bumps the completion counter, closes the span.
  void NoteJobCompletion(JobId id);

  // --- Response-time-model charges -------------------------------------------

  // One chunk of useful execution: work and the stall split.
  void ChargeChunk(JobState& js, SimDuration work_done, SimDuration reload_stall,
                   SimDuration steady_stall);
  // Reload-cost attribution for one chunk on a hierarchical topology: the
  // spans of reload stall served by the cluster LLC / remote memory. Charged
  // at chunk start (chunks always run to completion, so the totals match).
  void ChargeReloadTiers(JobState& js, SimDuration reload_llc, SimDuration reload_remote);
  // One reallocation path-length cost (kernel switch) charged to the job.
  void ChargeSwitch(JobState& js);
  // A completed holding period of `held` that produced no work.
  void ChargeWaste(JobState& js, SimDuration held);
  // One reallocation the job experienced, affine or not. `tier` is the
  // migration distance from the task's previous processor
  // (kNoMigrationTier for a first placement); `proc` the landing processor.
  void RecordDispatch(JobState& js, size_t proc, bool affine, size_t tier = kNoMigrationTier);
  // One realised multi-queue steal of `js` across `tier` (1-based: stealing
  // from the own queue is a local dispatch).
  void RecordSteal(JobState& js, size_t tier);
  // One realised balance-tick migration of `js`.
  void RecordBalanceMigration(JobState& js);

  // --- Allocation/credit/parallelism bookkeeping -----------------------------

  void UpdateAllocIntegral(JobId id);
  void UpdateCredit(JobId id);
  void ChangeAllocation(JobId id, int delta);
  void RecordParallelism(JobId id);
  void SetRunningWorkers(JobId id, int delta);

  // Handles for the event-count bumps that live with protocol/dispatch flow
  // (holds, yields, releases, preempts, resumes, arrivals, completions...).
  MetricHandles m;

 private:
  EngineCore& core_;
  MetricsRegistry* metrics_ = nullptr;
  JobSpanCollector* spans_ = nullptr;
};

}  // namespace affsched

#endif  // SRC_ENGINE_ACCOUNTING_H_
