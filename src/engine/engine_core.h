// Shared mutable state of the simulation engine, plus the pure queries over
// it. The engine's behaviour is implemented by three components that all
// operate on this one structure:
//
//   * Dispatcher (dispatcher.h)          — worker selection, chunk execution
//   * AllocatorProtocol (allocator_protocol.h) — the Section-5 job<->allocator
//     negotiation and reallocation mechanics
//   * Accounting (accounting.h)          — every response-time-model term and
//     all telemetry
//
// Engine (engine.h) is the composition root that wires them together and
// exposes SchedView to policies. Keeping the state in one struct (rather than
// spread across the components) preserves the monolith's exact operation
// order — the components are views onto the same machine, not actors with
// their own worlds.

#ifndef SRC_ENGINE_ENGINE_CORE_H_
#define SRC_ENGINE_ENGINE_CORE_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/machine/machine.h"
#include "src/sched/policy.h"
#include "src/sim/event_queue.h"
#include "src/stats/histogram.h"
#include "src/telemetry/metrics.h"
#include "src/trace/decision_trace.h"
#include "src/trace/trace.h"
#include "src/workload/app_profile.h"
#include "src/workload/job.h"
#include "src/workload/worker.h"

namespace affsched {

struct EngineOptions {
  // Maximum useful work per execution chunk; bounds dispatch latency.
  SimDuration chunk_quantum = Milliseconds(2);
  // Decay constant of the usage-credit priority scheme.
  double credit_decay_s = 8.0;
  // Record per-job parallelism histograms (Figures 2-4).
  bool record_parallelism = false;
  // Depth of each task's processor history (P of Section 5.3; the paper
  // evaluates P = 1). Affinity placement may use any remembered processor;
  // %affinity statistics always use the most recent one.
  size_t processor_history_depth = 1;
  // Cadence of the periodic load-balance tick (multi-queue policies). 0 (the
  // default) defers to Policy::BalanceInterval(), so runs configured through
  // RunOnce/sweeps can override the policy without a new plumbing path.
  // Balancing is off when both are 0.
  SimDuration balance_interval = 0;
};

struct ProcState {
  JobId holder = kInvalidJobId;
  // Worker executing a chunk here (kNoOwner if none).
  CacheOwner running = kNoOwner;
  // Worker placed here but currently without a thread.
  CacheOwner holding = kNoOwner;
  // True while the reallocation path-length cost is being paid.
  bool switching = false;
  // Advertised as reallocatable.
  bool willing = false;
  // Committed reassignment, applied at the next chunk boundary (or at
  // switch completion).
  bool pending_valid = false;
  JobId pending_job = kInvalidJobId;
  CacheOwner pending_prefer = kNoOwner;
  // Task the policy asked to see dispatched once the in-progress switch
  // completes (rule A.1).
  CacheOwner dispatch_prefer = kNoOwner;
  SimTime hold_start = 0;
  EventId yield_timer = kInvalidEventId;
  EventId quantum_timer = kInvalidEventId;
};

struct JobState {
  // Stable storage for the job's application profile (Job keeps a
  // reference to it).
  std::unique_ptr<AppProfile> profile;
  std::unique_ptr<Job> job;
  bool active = false;     // arrived and not completed
  size_t allocation = 0;   // processors currently held (incl. switching)
  size_t pending_incoming = 0;
  size_t pending_outgoing = 0;
  // Processors mid-switch toward this job (they will consume a ready
  // thread when the switch completes).
  size_t switching_in = 0;
  // Idle workers, most recently idled first.
  std::vector<CacheOwner> idle_workers;
  size_t running_workers = 0;
  // Usage-credit priority state.
  double credit = 0.0;
  SimTime credit_update = 0;
  SimTime alloc_update = 0;
  std::unique_ptr<WeightedHistogram> par_hist;
  SimTime par_update = 0;
  // Per-job metric handles (nullptr while metrics are detached).
  Counter* metric_reallocations = nullptr;
  Counter* metric_reload_stall_ns = nullptr;
  // Cache-color reservation (partitioned cache model only): the mask the
  // policy answered at arrival, applied to every worker this job creates.
  // All-ones — every color — for jobs under non-partitioning policies.
  uint64_t color_mask = ~0ull;
};

struct EngineCore {
  EngineCore(const MachineConfig& machine_config, std::unique_ptr<Policy> policy_in,
             uint64_t seed, const EngineOptions& options_in);

  // --- Queries ---------------------------------------------------------------

  Worker& worker(CacheOwner id);
  const Worker& worker(CacheOwner id) const;
  // True if `id` names a worker created by CreateWorker.
  bool HasWorker(CacheOwner id) const { return id >= 1 && id <= workers.size(); }
  JobState& job_state(JobId id);
  const JobState& job_state(JobId id) const;
  CacheOwner CreateWorker(JobId id);

  // Processors a job holds net of committed reassignments.
  size_t EffectiveAllocation(JobId id) const;
  // Additional processors the job can productively use right now.
  size_t PendingDemand(JobId id) const;
  double FairShare() const;
  // Usage-credit priority (decayed credit plus accrual against fair share).
  double Priority(JobId id) const;

  void Emit(TraceEventKind kind, size_t proc, JobId job, CacheOwner worker_id = kNoOwner,
            bool affine = false);

  // --- State -----------------------------------------------------------------

  EngineOptions options;
  EventQueue queue;
  Machine machine;
  std::unique_ptr<Policy> policy;
  Rng rng;
  // The SchedView policies consult (the Engine); set by the composition root.
  SchedView* view = nullptr;

  std::vector<JobState> jobs;      // indexed by JobId
  std::vector<JobId> active_jobs;  // arrival order
  std::vector<ProcState> procs;
  std::vector<Worker> workers;  // indexed by worker id - 1 (ids start at 1)
  CacheOwner next_worker_id = 1;
  size_t jobs_remaining = 0;
  // External (open-system) events not yet run: arrival streams keep the run
  // loop alive across intervals where no submitted job remains.
  size_t external_pending = 0;
  // Invoked synchronously from HandleJobCompletion after the departure is
  // accounted, before the policy is notified. Open-system drivers use it to
  // admit queued jobs at departure instants.
  std::function<void(JobId)> completion_hook;
  bool running = false;
  TraceSink* trace = nullptr;
  // Decision-provenance sink (nullptr disables; the guard is one pointer
  // compare before any record assembly happens).
  DecisionSink* decisions = nullptr;
  uint64_t next_decision_id = 1;

  // True while the run loop must keep going: submitted jobs outstanding or
  // external events (future arrivals) still pending.
  bool WorkRemaining() const { return jobs_remaining > 0 || external_pending > 0; }
};

}  // namespace affsched

#endif  // SRC_ENGINE_ENGINE_CORE_H_
