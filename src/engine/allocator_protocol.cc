#include "src/engine/allocator_protocol.h"

#include <algorithm>
#include <vector>

#include "src/common/check.h"
#include "src/engine/dispatcher.h"

namespace affsched {

void AllocatorProtocol::ApplyDecision(const PolicyDecision& decision, DecisionSite site) {
  if (decision.targets.has_value()) {
    Reconcile(*decision.targets);
  }
  for (const Assignment& a : decision.assignments) {
    if (core_.decisions != nullptr) {
      RecordDecision(site, a);
    }
    AssignProcessor(a);
  }
}

void AllocatorProtocol::RecordDecision(DecisionSite site, const Assignment& a) {
  DecisionRecord rec;
  rec.id = core_.next_decision_id++;
  rec.when = core_.queue.now();
  rec.site = site;
  rec.reason = a.reason;
  rec.job = a.job;
  rec.chosen_proc = a.proc;
  rec.prefer_task = a.prefer_task;

  // Reference task for the affinity breakdown: the explicit preference, else
  // the worker the dispatcher is most likely to pick — the job's first idle
  // worker with a placement history (mirrors Engine::DesiredProcessor).
  CacheOwner task = a.prefer_task;
  if (task == kNoOwner && a.job < core_.jobs.size()) {
    for (CacheOwner wid : core_.job_state(a.job).idle_workers) {
      if (core_.worker(wid).last_processor() != kNoProcessor) {
        task = wid;
        break;
      }
    }
  }
  const size_t last = task != kNoOwner && core_.HasWorker(task)
                          ? core_.worker(task).last_processor()
                          : kNoProcessor;
  const double miss_service_s = core_.machine.config().MissServiceSeconds();
  const double ws_blocks =
      a.job < core_.jobs.size() ? core_.job_state(a.job).profile->working_set.blocks : 0.0;

  rec.candidates.reserve(core_.procs.size());
  for (size_t p = 0; p < core_.procs.size(); ++p) {
    DecisionCandidate cand;
    cand.proc = p;
    if (last != kNoProcessor) {
      cand.tier = core_.machine.topology().TierBetween(last, p);
    }
    const CacheModel& cache = core_.machine.processor(p).cache();
    if (task != kNoOwner) {
      cand.footprint_blocks = cache.Resident(task);
    }
    const double target = cache.MaxResident(ws_blocks);
    cand.reload_cost_s = target > cand.footprint_blocks
                             ? (target - cand.footprint_blocks) * miss_service_s
                             : 0.0;
    const ProcState& ps = core_.procs[p];
    cand.available = ps.holder == kInvalidJobId || (ps.willing && !ps.pending_valid);
    cand.chosen = p == a.proc;
    rec.candidates.push_back(cand);
  }
  core_.decisions->Record(std::move(rec));
}

void AllocatorProtocol::Reconcile(const std::map<JobId, size_t>& targets) {
  // Phase 1: release surplus processors.
  std::vector<size_t> preempt_list;
  for (JobId id : core_.active_jobs) {
    JobState& js = core_.job_state(id);
    auto it = targets.find(id);
    const size_t target = it == targets.end() ? 0 : it->second;
    const size_t committed = js.allocation + js.pending_incoming;
    const size_t effective = committed > js.pending_outgoing ? committed - js.pending_outgoing : 0;
    size_t excess = effective > target ? effective - target : 0;
    // Idle (holding) processors go first: releasing them costs nothing.
    for (size_t p = 0; p < core_.procs.size() && excess > 0; ++p) {
      ProcState& ps = core_.procs[p];
      if (ps.holder == id && ps.holding != kNoOwner && !ps.pending_valid) {
        ReleaseFromHolder(p);
        --excess;
      }
    }
    for (size_t p = 0; p < core_.procs.size() && excess > 0; ++p) {
      ProcState& ps = core_.procs[p];
      if (ps.holder == id && !ps.pending_valid && (ps.running != kNoOwner || ps.switching)) {
        preempt_list.push_back(p);
        --excess;
      }
    }
  }

  // Phase 2: satisfy deficits, free processors first (cheap), then the
  // preemption list (takes effect at chunk boundaries).
  size_t preempt_cursor = 0;
  for (JobId id : core_.active_jobs) {
    JobState& js = core_.job_state(id);
    auto it = targets.find(id);
    const size_t target = it == targets.end() ? 0 : it->second;
    const size_t committed = js.allocation + js.pending_incoming;
    const size_t effective = committed > js.pending_outgoing ? committed - js.pending_outgoing : 0;
    size_t deficit = target > effective ? target - effective : 0;
    for (size_t p = 0; p < core_.procs.size() && deficit > 0; ++p) {
      if (core_.procs[p].holder == kInvalidJobId && !core_.procs[p].switching) {
        if (core_.decisions != nullptr) {
          RecordDecision(DecisionSite::kReconcile,
                         Assignment{p, id, kNoOwner, DecisionReason::kRepartition});
        }
        StartSwitch(p, id, kNoOwner);
        --deficit;
      }
    }
    while (deficit > 0 && preempt_cursor < preempt_list.size()) {
      const size_t p = preempt_list[preempt_cursor++];
      if (core_.decisions != nullptr) {
        RecordDecision(DecisionSite::kReconcile,
                       Assignment{p, id, kNoOwner, DecisionReason::kRepartition});
      }
      SetPending(p, id, kNoOwner);
      --deficit;
    }
  }
}

void AllocatorProtocol::AssignProcessor(const Assignment& a) {
  AFF_CHECK(a.proc < core_.procs.size());
  AFF_CHECK(a.job < core_.jobs.size());
  ProcState& ps = core_.procs[a.proc];
  JobState& to = core_.job_state(a.job);
  if (!to.active) {
    return;
  }
  if (ps.holder == a.job) {
    // Rescind a pending takeaway; otherwise nothing to do — the job already
    // holds this processor.
    if (ps.pending_valid) {
      ClearPending(a.proc);
    }
    return;
  }
  // The assignment will be realised (committed now or at the next chunk
  // boundary): count steal/balance provenance here so the per-tier counters
  // see only grants that changed hands, not no-op re-assignments.
  if (a.steal_tier != kNoStealTier) {
    acct_.RecordSteal(to, a.steal_tier);
  } else if (a.reason == DecisionReason::kBalanceMigrate) {
    acct_.RecordBalanceMigration(to);
  }
  if (ps.running != kNoOwner || ps.switching) {
    SetPending(a.proc, a.job, a.prefer_task);
    return;
  }
  if (ps.holder != kInvalidJobId) {
    ReleaseFromHolder(a.proc);
  }
  StartSwitch(a.proc, a.job, a.prefer_task);
}

void AllocatorProtocol::SetPending(size_t proc, JobId id, CacheOwner prefer) {
  ProcState& ps = core_.procs[proc];
  AFF_CHECK(ps.running != kNoOwner || ps.switching);
  if (ps.pending_valid) {
    ClearPending(proc);
  }
  ps.pending_valid = true;
  ps.pending_job = id;
  ps.pending_prefer = prefer;
  ps.willing = false;
  core_.job_state(id).pending_incoming++;
  core_.job_state(ps.holder).pending_outgoing++;
}

void AllocatorProtocol::ClearPending(size_t proc) {
  ProcState& ps = core_.procs[proc];
  AFF_CHECK(ps.pending_valid);
  JobState& to = core_.job_state(ps.pending_job);
  AFF_CHECK(to.pending_incoming > 0);
  to.pending_incoming--;
  JobState& from = core_.job_state(ps.holder);
  AFF_CHECK(from.pending_outgoing > 0);
  from.pending_outgoing--;
  ps.pending_valid = false;
  ps.pending_job = kInvalidJobId;
  ps.pending_prefer = kNoOwner;
}

void AllocatorProtocol::ReleaseFromHolder(size_t proc) {
  ProcState& ps = core_.procs[proc];
  AFF_CHECK(ps.holder != kInvalidJobId);
  AFF_CHECK(ps.holding != kNoOwner);
  JobState& js = core_.job_state(ps.holder);
  acct_.ChargeWaste(js, core_.queue.now() - ps.hold_start);
  if (ps.yield_timer != kInvalidEventId) {
    core_.queue.Cancel(ps.yield_timer);
    ps.yield_timer = kInvalidEventId;
  }
  Worker& w = core_.worker(ps.holding);
  dispatcher_->ParkWorker(js, w);
  core_.Emit(TraceEventKind::kRelease, proc, ps.holder, w.id);
  Bump(acct_.m.releases);
  acct_.ChangeAllocation(ps.holder, -1);
  ps.holder = kInvalidJobId;
  ps.holding = kNoOwner;
  ps.willing = false;
}

void AllocatorProtocol::StartSwitch(size_t proc, JobId to_job, CacheOwner prefer) {
  ProcState& ps = core_.procs[proc];
  AFF_CHECK(ps.holder == kInvalidJobId);
  AFF_CHECK(!ps.switching && ps.running == kNoOwner && ps.holding == kNoOwner);
  AFF_CHECK(!ps.pending_valid);
  JobState& js = core_.job_state(to_job);
  AFF_CHECK(js.active);
  ps.holder = to_job;
  ps.switching = true;
  ps.willing = false;
  ps.dispatch_prefer = prefer;
  js.switching_in++;
  acct_.ChangeAllocation(to_job, +1);
  acct_.ChargeSwitch(js);
  core_.Emit(TraceEventKind::kSwitchStart, proc, to_job);
  core_.queue.ScheduleAfter(core_.machine.config().SwitchCost(),
                            [this, proc] { OnSwitchDone(proc); });
}

void AllocatorProtocol::OnSwitchDone(size_t proc) {
  ProcState& ps = core_.procs[proc];
  AFF_CHECK(ps.switching);
  ps.switching = false;
  JobState& js = core_.job_state(ps.holder);
  AFF_CHECK(js.switching_in > 0);
  js.switching_in--;

  if (ps.pending_valid) {
    // Retargeted while the switch was in flight: switch again.
    const JobId to = ps.pending_job;
    const CacheOwner prefer = ps.pending_prefer;
    ClearPending(proc);
    const JobId from = ps.holder;
    acct_.ChangeAllocation(from, -1);
    ps.holder = kInvalidJobId;
    if (core_.job_state(to).active) {
      StartSwitch(proc, to, prefer);
    } else if (core_.jobs_remaining > 0) {
      ApplyDecision(core_.policy->OnProcessorAvailable(*core_.view, proc),
                    DecisionSite::kProcessorAvailable);
    }
    return;
  }

  if (!js.active) {
    // The job completed while this switch was in flight.
    acct_.ChangeAllocation(ps.holder, -1);
    ps.holder = kInvalidJobId;
    if (core_.jobs_remaining > 0) {
      ApplyDecision(core_.policy->OnProcessorAvailable(*core_.view, proc),
                    DecisionSite::kProcessorAvailable);
    }
    return;
  }
  dispatcher_->DispatchWorker(proc);
}

void AllocatorProtocol::EnterHolding(size_t proc, CacheOwner worker_id) {
  ProcState& ps = core_.procs[proc];
  Worker& w = core_.worker(worker_id);
  AFF_CHECK(w.processor == proc);
  ps.holding = worker_id;
  ps.running = kNoOwner;
  ps.willing = false;
  ps.hold_start = core_.queue.now();
  w.state = Worker::State::kHolding;
  w.current.reset();
  core_.Emit(TraceEventKind::kHold, proc, ps.holder, worker_id);
  Bump(acct_.m.holds);
  const SimDuration delay = core_.policy->YieldDelay();
  if (delay <= 0) {
    OnYieldTimer(proc);
  } else {
    ps.yield_timer = core_.queue.ScheduleAfter(delay, [this, proc] { OnYieldTimer(proc); });
  }
}

void AllocatorProtocol::OnYieldTimer(size_t proc) {
  ProcState& ps = core_.procs[proc];
  ps.yield_timer = kInvalidEventId;
  if (ps.holding == kNoOwner || ps.pending_valid) {
    return;
  }
  ps.willing = true;
  core_.Emit(TraceEventKind::kYield, proc, ps.holder, ps.holding);
  Bump(acct_.m.yields);
  ApplyDecision(core_.policy->OnProcessorAvailable(*core_.view, proc),
                DecisionSite::kProcessorAvailable);
}

void AllocatorProtocol::OnQuantumTimer(size_t proc) {
  ProcState& ps = core_.procs[proc];
  ps.quantum_timer = kInvalidEventId;
  if (ps.holder == kInvalidJobId || core_.jobs_remaining == 0) {
    return;
  }
  ApplyDecision(core_.policy->OnQuantumExpiry(*core_.view, proc),
                DecisionSite::kQuantumExpiry);
  // Keep the clock ticking while the processor stays held.
  if (core_.procs[proc].holder != kInvalidJobId && core_.policy->Quantum() > 0) {
    ps.quantum_timer = core_.queue.ScheduleAfter(core_.policy->Quantum(),
                                                 [this, proc] { OnQuantumTimer(proc); });
  }
}

void AllocatorProtocol::HandleJobCompletion(JobId id, size_t completing_proc) {
  JobState& js = core_.job_state(id);
  acct_.UpdateAllocIntegral(id);
  acct_.RecordParallelism(id);
  js.job->stats().completion = core_.queue.now();
  js.active = false;
  core_.Emit(TraceEventKind::kJobCompletion, SIZE_MAX, id);
  auto it = std::find(core_.active_jobs.begin(), core_.active_jobs.end(), id);
  AFF_CHECK(it != core_.active_jobs.end());
  core_.active_jobs.erase(it);
  acct_.NoteJobCompletion(id);
  if (js.job->stats().deadline_misses > 0) {
    core_.Emit(TraceEventKind::kDeadlineMiss, SIZE_MAX, id);
  }
  if (acct_.m.active_jobs != nullptr) {
    acct_.m.active_jobs->Set(static_cast<double>(core_.active_jobs.size()));
  }
  AFF_CHECK(core_.jobs_remaining > 0);
  --core_.jobs_remaining;

  std::vector<size_t> freed = {completing_proc};
  for (size_t p = 0; p < core_.procs.size(); ++p) {
    ProcState& ps = core_.procs[p];
    if (ps.holder != id) {
      continue;
    }
    if (ps.holding != kNoOwner) {
      ReleaseFromHolder(p);
      freed.push_back(p);
    } else {
      // Switch in flight; OnSwitchDone notices the inactive holder and frees
      // the processor itself. Running chunks are impossible once the graph is
      // finished.
      AFF_CHECK(ps.switching);
    }
  }

  // Departure hook before the policy reacts: an open-system driver may admit
  // a queued job here. Admission defers the actual arrival through an event
  // at the current timestamp, so the policy sees departure before arrival.
  if (core_.completion_hook) {
    core_.completion_hook(id);
  }

  if (core_.jobs_remaining == 0 && core_.external_pending == 0) {
    return;
  }
  ApplyDecision(core_.policy->OnJobDeparture(*core_.view, id), DecisionSite::kJobDeparture);
  for (size_t p : freed) {
    if (core_.procs[p].holder == kInvalidJobId && !core_.procs[p].switching) {
      ApplyDecision(core_.policy->OnProcessorAvailable(*core_.view, p),
                    DecisionSite::kProcessorAvailable);
    }
  }
  // Survivors may have had unmet demand the departed job's processors can now
  // satisfy.
  for (JobId survivor : std::vector<JobId>(core_.active_jobs)) {
    RequestLoop(survivor);
  }
}

void AllocatorProtocol::NotifyNewWork(JobId id) {
  JobState& js = core_.job_state(id);
  if (!js.active) {
    return;
  }
  // Held processors absorb new threads first — this is the yield-delay win:
  // no reallocation cost at all.
  for (size_t p = 0; p < core_.procs.size() && js.job->HasReadyThread(); ++p) {
    ProcState& ps = core_.procs[p];
    if (ps.holder != id || ps.holding == kNoOwner || ps.pending_valid) {
      continue;
    }
    acct_.ChargeWaste(js, core_.queue.now() - ps.hold_start);
    if (ps.yield_timer != kInvalidEventId) {
      core_.queue.Cancel(ps.yield_timer);
      ps.yield_timer = kInvalidEventId;
    }
    ps.willing = false;
    Worker& w = core_.worker(ps.holding);
    ps.holding = kNoOwner;
    ps.running = w.id;
    w.state = Worker::State::kRunning;
    w.current = js.job->PopReadyThread();
    acct_.SetRunningWorkers(id, +1);
    core_.Emit(TraceEventKind::kResume, p, id, w.id);
    Bump(acct_.m.resumes);
    dispatcher_->StartChunk(p);
  }
  RequestLoop(id);
}

void AllocatorProtocol::RequestLoop(JobId id) {
  JobState& js = core_.job_state(id);
  while (js.active && core_.PendingDemand(id) > 0) {
    const size_t before = core_.PendingDemand(id);
    const PolicyDecision decision = core_.policy->OnRequest(*core_.view, id);
    if (decision.assignments.empty() && !decision.targets.has_value()) {
      break;
    }
    ApplyDecision(decision, DecisionSite::kRequest);
    if (core_.PendingDemand(id) >= before) {
      break;  // no progress; avoid spinning
    }
  }
}

}  // namespace affsched
