// Convenience constructors for the paper's policy line-up.

#ifndef SRC_SCHED_FACTORY_H_
#define SRC_SCHED_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sched/policy.h"

namespace affsched {

enum class PolicyKind {
  kEquipartition,
  kDynamic,
  kDynAff,
  kDynAffNoPri,
  kDynAffDelay,
  kDynAffCluster,
  kDynAffNode,
  kTimeShare,
  kTimeShareAff,
  kMqNoSteal,
  kMqSibling,
  kMqCluster,
  kMqNuma,
  kRtStaticAffinity,
  kRtColorIso,
};

// Default hold time for Dyn-Aff-Delay.
inline constexpr SimDuration kDefaultYieldDelay = Milliseconds(20);

std::unique_ptr<Policy> MakePolicy(PolicyKind kind);

std::string PolicyKindName(PolicyKind kind);

// Stable lowercase identifier for command lines, sweep specs and JSON keys
// ("equi", "dyn-aff", ...), as opposed to the display name above.
std::string PolicyKindCliName(PolicyKind kind);

// Parses the short command-line names used by simctl and the sweep specs
// ("equi", "dynamic", "dyn-aff", "dyn-aff-nopri", "dyn-aff-delay",
// "dyn-aff-cluster", "dyn-aff-node", "timeshare", "timeshare-aff",
// "mq-nosteal", "mq-sibling", "mq-cluster", "mq-numa", "rt-static-affinity",
// "rt-color-iso").
// Returns false on an unknown name.
bool PolicyKindFromName(const std::string& name, PolicyKind* kind);

// The policies Figure 5 compares against Equipartition, in paper order.
std::vector<PolicyKind> DynamicFamily();

// The line-up the topology experiments compare on hierarchical machines:
// Equipartition, Dynamic, and the exact/cluster/node affinity variants.
std::vector<PolicyKind> TopologyPolicyFamily();

// The multi-queue (MQMS) steal-policy family, no-steal baseline first, then
// by widening steal radius (src/sched/multiqueue.h).
std::vector<PolicyKind> MqPolicyFamily();

// True for the multi-queue kinds (they report per-tier steal/balance
// counters the centralized policies never touch).
bool IsMqPolicy(PolicyKind kind);

// For a multi-queue kind, the `steal=` axis value ("nosteal", "sibling",
// "cluster", "numa"); parses the reverse direction too.
std::string StealPolicyName(PolicyKind kind);
bool PolicyKindFromStealName(const std::string& name, PolicyKind* kind);

// The static real-time policies (src/sched/rt_static.h), span-only variant
// first, then with per-job color isolation.
std::vector<PolicyKind> RtPolicyFamily();

// True for the static real-time kinds (their runs report deadline/tardiness
// terms the best-effort policies never produce).
bool IsRtPolicy(PolicyKind kind);

}  // namespace affsched

#endif  // SRC_SCHED_FACTORY_H_
