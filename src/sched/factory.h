// Convenience constructors for the paper's policy line-up.

#ifndef SRC_SCHED_FACTORY_H_
#define SRC_SCHED_FACTORY_H_

#include <memory>
#include <string>
#include <vector>

#include "src/sched/policy.h"

namespace affsched {

enum class PolicyKind {
  kEquipartition,
  kDynamic,
  kDynAff,
  kDynAffNoPri,
  kDynAffDelay,
  kDynAffCluster,
  kDynAffNode,
  kTimeShare,
  kTimeShareAff,
};

// Default hold time for Dyn-Aff-Delay.
inline constexpr SimDuration kDefaultYieldDelay = Milliseconds(20);

std::unique_ptr<Policy> MakePolicy(PolicyKind kind);

std::string PolicyKindName(PolicyKind kind);

// Stable lowercase identifier for command lines, sweep specs and JSON keys
// ("equi", "dyn-aff", ...), as opposed to the display name above.
std::string PolicyKindCliName(PolicyKind kind);

// Parses the short command-line names used by simctl and the sweep specs
// ("equi", "dynamic", "dyn-aff", "dyn-aff-nopri", "dyn-aff-delay",
// "dyn-aff-cluster", "dyn-aff-node", "timeshare", "timeshare-aff").
// Returns false on an unknown name.
bool PolicyKindFromName(const std::string& name, PolicyKind* kind);

// The policies Figure 5 compares against Equipartition, in paper order.
std::vector<PolicyKind> DynamicFamily();

// The line-up the topology experiments compare on hierarchical machines:
// Equipartition, Dynamic, and the exact/cluster/node affinity variants.
std::vector<PolicyKind> TopologyPolicyFamily();

}  // namespace affsched

#endif  // SRC_SCHED_FACTORY_H_
