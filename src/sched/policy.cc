#include "src/sched/policy.h"

namespace affsched {

PolicyDecision Policy::OnQuantumExpiry(const SchedView& /*view*/, size_t /*proc*/) { return {}; }

}  // namespace affsched
