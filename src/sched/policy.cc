#include "src/sched/policy.h"

namespace affsched {

PolicyDecision Policy::OnQuantumExpiry(const SchedView& /*view*/, size_t /*proc*/) { return {}; }

PolicyDecision Policy::OnBalanceTick(const SchedView& /*view*/) { return {}; }

}  // namespace affsched
