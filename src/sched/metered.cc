#include "src/sched/metered.h"

#include <utility>

namespace affsched {

MeteredPolicy::MeteredPolicy(std::unique_ptr<Policy> inner) : inner_(std::move(inner)) {}

void MeteredPolicy::AttachMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    on_arrival_ = on_departure_ = on_available_ = on_request_ = on_quantum_ = nullptr;
    on_balance_ = assignments_ = repartitions_ = nullptr;
    return;
  }
  on_arrival_ = registry->FindOrCreateCounter("policy.on_arrival");
  on_departure_ = registry->FindOrCreateCounter("policy.on_departure");
  on_available_ = registry->FindOrCreateCounter("policy.on_available");
  on_request_ = registry->FindOrCreateCounter("policy.on_request");
  on_quantum_ = registry->FindOrCreateCounter("policy.on_quantum");
  on_balance_ = registry->FindOrCreateCounter("policy.on_balance");
  assignments_ = registry->FindOrCreateCounter("policy.assignments");
  repartitions_ = registry->FindOrCreateCounter("policy.repartitions");
}

PolicyDecision MeteredPolicy::Account(Counter* hook, PolicyDecision decision) {
  if (hook != nullptr) {
    hook->Add();
  }
  if (assignments_ != nullptr && !decision.assignments.empty()) {
    assignments_->Add(static_cast<double>(decision.assignments.size()));
  }
  if (repartitions_ != nullptr && decision.targets.has_value()) {
    repartitions_->Add();
  }
  return decision;
}

PolicyDecision MeteredPolicy::OnJobArrival(const SchedView& view, JobId job) {
  ScopedTimer timer(profile_);
  return Account(on_arrival_, inner_->OnJobArrival(view, job));
}

PolicyDecision MeteredPolicy::OnJobDeparture(const SchedView& view, JobId job) {
  ScopedTimer timer(profile_);
  return Account(on_departure_, inner_->OnJobDeparture(view, job));
}

PolicyDecision MeteredPolicy::OnProcessorAvailable(const SchedView& view, size_t proc) {
  ScopedTimer timer(profile_);
  return Account(on_available_, inner_->OnProcessorAvailable(view, proc));
}

PolicyDecision MeteredPolicy::OnRequest(const SchedView& view, JobId job) {
  ScopedTimer timer(profile_);
  return Account(on_request_, inner_->OnRequest(view, job));
}

PolicyDecision MeteredPolicy::OnQuantumExpiry(const SchedView& view, size_t proc) {
  ScopedTimer timer(profile_);
  return Account(on_quantum_, inner_->OnQuantumExpiry(view, proc));
}

PolicyDecision MeteredPolicy::OnBalanceTick(const SchedView& view) {
  ScopedTimer timer(profile_);
  return Account(on_balance_, inner_->OnBalanceTick(view));
}

}  // namespace affsched
