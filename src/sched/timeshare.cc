#include "src/sched/timeshare.h"

namespace affsched {

PolicyDecision TimeSharePolicy::OnJobArrival(const SchedView& /*view*/, JobId /*job*/) {
  return {};
}

PolicyDecision TimeSharePolicy::OnJobDeparture(const SchedView& /*view*/, JobId /*job*/) {
  return {};
}

PolicyDecision TimeSharePolicy::OnProcessorAvailable(const SchedView& view, size_t proc) {
  PolicyDecision decision;
  // Give the processor to the requesting job with the largest unmet demand
  // (FIFO on ties), skipping the current holder.
  JobId best = kInvalidJobId;
  size_t best_demand = 0;
  for (JobId j : view.ActiveJobs()) {
    const size_t demand = view.PendingDemand(j);
    if (j != view.ProcessorJob(proc) && demand > best_demand) {
      best = j;
      best_demand = demand;
    }
  }
  if (best != kInvalidJobId) {
    decision.assignments.push_back(
        Assignment{proc, best, kNoOwner, DecisionReason::kDemandHandoff});
  }
  return decision;
}

PolicyDecision TimeSharePolicy::OnRequest(const SchedView& view, JobId job) {
  PolicyDecision decision;
  if (view.PendingDemand(job) == 0) {
    return decision;
  }
  // Only unallocated processors are claimed on request; rotation is what
  // moves processors between jobs under time sharing.
  for (size_t p = 0; p < view.NumProcessors(); ++p) {
    if (view.ProcessorJob(p) == kInvalidJobId) {
      decision.assignments.push_back(
          Assignment{p, job, kNoOwner, DecisionReason::kFreeProcessor});
      return decision;
    }
  }
  return decision;
}

PolicyDecision TimeSharePolicy::OnQuantumExpiry(const SchedView& view, size_t proc) {
  PolicyDecision decision;
  const std::vector<JobId> jobs = view.ActiveJobs();
  if (jobs.size() < 2) {
    return decision;
  }

  // Rotate the processor to the next job (round-robin) with unmet demand.
  // Both variants rotate identically — quantum-driven fairness is the
  // defining property of time sharing. The affinity variant differs in task
  // *placement*: UsesAffinity() makes the runtime dispatch the worker whose
  // cache context lives on this processor (and A.1-style reunification
  // below), the approach of [Squillante & Lazowska 89].
  for (size_t step = 0; step < jobs.size(); ++step) {
    const JobId candidate = jobs[(rotation_cursor_ + step) % jobs.size()];
    if (candidate != view.ProcessorJob(proc) && view.PendingDemand(candidate) > 0) {
      rotation_cursor_ = (rotation_cursor_ + step + 1) % jobs.size();
      CacheOwner prefer = kNoOwner;
      if (options_.use_affinity) {
        const CacheOwner last = view.LastTaskOn(proc);
        if (last != kNoOwner && view.TaskJob(last) == candidate && view.TaskRunnable(last)) {
          prefer = last;
        }
      }
      decision.assignments.push_back(
          Assignment{proc, candidate, prefer, DecisionReason::kQuantumRotate});
      return decision;
    }
  }
  return decision;
}

}  // namespace affsched
