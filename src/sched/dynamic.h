// The Dynamic policy family (Sections 5.2-5.4).
//
// Dynamic [McCann et al. 91] reallocates processors in response to the
// instantaneous demands of jobs, satisfying requests with (D.1) unallocated
// processors, then (D.2) willing-to-yield processors, then (D.3) equitable
// preemption from the job with the largest allocation. A usage-based priority
// scheme rewards jobs that use few processors.
//
// Options select the paper's variants:
//   Dyn-Aff       — adds affinity rules A.1 (give an available processor back
//                   to the last task that ran there, priority permitting) and
//                   A.2 (honour the requesting job's desired processor).
//   Dyn-Aff-NoPri — A.1 ignores priorities and D.3 is disabled (an artificial
//                   policy used to bound the benefit of affinity scheduling).
//   Dyn-Aff-Delay — jobs hold idle processors for `yield_delay` before
//                   advertising them, trading a little waste for fewer
//                   reallocations.

#ifndef SRC_SCHED_DYNAMIC_H_
#define SRC_SCHED_DYNAMIC_H_

#include "src/sched/policy.h"

namespace affsched {

struct DynamicOptions {
  // Enables affinity rules A.1 / A.2.
  bool use_affinity = false;
  // When false, reproduces Dyn-Aff-NoPri: A.1 always prefers the last task,
  // and the D.3 fairness preemption is disabled.
  bool enforce_priority = true;
  // Dyn-Aff-Delay's hold time for idle processors (0 = immediate yield).
  SimDuration yield_delay = 0;
  // Priority-credit cost (processor-seconds) per processor of advantage when
  // preempting beyond strict equalisation. This is the "spend credits to
  // obtain temporarily more than its fair share" mechanism of
  // [McCann et al. 91]: jobs that used few processors during narrow phases
  // may claim extra ones during bursts, and the rising per-processor cost
  // keeps the exchange from thrashing.
  double credit_margin = 1.5;
  // Maximum migration distance tier (SchedView::DistanceTier) at which a
  // task's cache context still counts as affinity for rules A.1/A.2:
  //   0 — exact processor only (the paper's Dyn-Aff; private caches only)
  //   1 — same cluster (Dyn-Aff-Cluster: the shared LLC keeps context warm)
  //   2 — same node (Dyn-Aff-Node: anything beating a remote fetch)
  // At 0 the rules reduce exactly to the flat-machine Dyn-Aff behaviour.
  size_t affinity_tier = 0;

  std::string PolicyName() const;
};

class DynamicPolicy : public Policy {
 public:
  explicit DynamicPolicy(const DynamicOptions& options) : options_(options) {}

  std::string name() const override { return options_.PolicyName(); }

  PolicyDecision OnJobArrival(const SchedView& view, JobId job) override;
  PolicyDecision OnJobDeparture(const SchedView& view, JobId job) override;
  PolicyDecision OnProcessorAvailable(const SchedView& view, size_t proc) override;
  PolicyDecision OnRequest(const SchedView& view, JobId job) override;

  SimDuration YieldDelay() const override { return options_.yield_delay; }
  bool UsesAffinity() const override { return options_.use_affinity; }

  const DynamicOptions& options() const { return options_; }

 private:
  // Requesting jobs (PendingDemand > 0), best-first: by priority when the
  // priority scheme is enforced, else by arrival order.
  std::vector<JobId> RankedRequesters(const SchedView& view) const;

  // Rule D.3: picks a processor to preempt for `job`, or kNoProcessor.
  size_t PickPreemptionVictim(const SchedView& view, JobId job) const;

  DynamicOptions options_;
};

}  // namespace affsched

#endif  // SRC_SCHED_DYNAMIC_H_
