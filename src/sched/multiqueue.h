// The multi-queue (MQMS) scheduler family: per-processor local run queues
// with distance-tier-limited work stealing.
//
// The paper's Section-5 policies are centralized space-sharers: one allocator
// sees every request and every processor. Modern kernels instead schedule
// from per-processor run queues and move work via pull (steal) and push
// (periodic balance) migration — exactly the regime where cache affinity
// matters most, since every steal is a potential cache reload. This family
// re-asks the paper's question in that regime:
//
//   * every job is "homed" on one processor's local queue (least-loaded at
//     arrival); an available processor serves its own queue first,
//   * when the local queue is empty, it steals — but only from queues within
//     `steal_tier` migration distance (src/topology): a sibling sharing the
//     LLC, the cluster, or anywhere on the machine. steal_tier 0 is the
//     no-steal baseline,
//   * victim selection is affinity-aware: among in-range candidates at the
//     nearest tier, steal the job with the smallest estimated reload cost at
//     the thief (SchedView::ReloadCostSeconds — the CacheModel
//     footprint/reload seam the decision trace also scores candidates with),
//   * an optional periodic balance tick re-homes one job from the most- to
//     the least-loaded queue (push migration), affinity-aware the same way.
//
// Starvation note: stealing is restricted on the *pull* side only
// (OnProcessorAvailable). OnRequest — the push side the engine drives while a
// job has unmet demand — may always place on a free processor, nearest-first
// from the job's home. Without this, a no-steal machine could idle a free
// processor forever while a job homed elsewhere starves, which the engine
// (correctly) reports as a stall.

#ifndef SRC_SCHED_MULTIQUEUE_H_
#define SRC_SCHED_MULTIQUEUE_H_

#include <map>

#include "src/sched/policy.h"

namespace affsched {

struct MultiQueueOptions {
  // Maximum distance tier a processor may steal across:
  //   0 — never steal (per-queue baseline; push placement still works)
  //   1 — same cluster only (sibling queues sharing the LLC)
  //   2 — same node (cluster-next)
  //   3 — whole machine (NUMA-last)
  size_t steal_tier = 0;
  // Cadence of the periodic load-balance tick; 0 disables balancing.
  // EngineOptions::balance_interval overrides this per run when set.
  SimDuration balance_interval = 0;

  std::string PolicyName() const;
};

class MultiQueuePolicy : public Policy {
 public:
  explicit MultiQueuePolicy(const MultiQueueOptions& options) : options_(options) {}

  std::string name() const override { return options_.PolicyName(); }

  PolicyDecision OnJobArrival(const SchedView& view, JobId job) override;
  PolicyDecision OnJobDeparture(const SchedView& view, JobId job) override;
  PolicyDecision OnProcessorAvailable(const SchedView& view, size_t proc) override;
  PolicyDecision OnRequest(const SchedView& view, JobId job) override;
  PolicyDecision OnBalanceTick(const SchedView& view) override;

  bool UsesAffinity() const override { return true; }
  SimDuration BalanceInterval() const override { return options_.balance_interval; }

  const MultiQueueOptions& options() const { return options_; }
  // The job's home queue (kNoProcessor if it has none yet); test hook.
  size_t HomeOf(JobId job) const;

 private:
  // Homes `job` on the least-loaded queue if it has no home yet, and returns
  // the home processor.
  size_t EnsureHome(const SchedView& view, JobId job);
  // Jobs with unmet demand, best-first by usage priority (arrival order ties).
  std::vector<JobId> RankedRequesters(const SchedView& view) const;
  // Active jobs homed on each processor's queue.
  std::vector<size_t> QueueLoads(const SchedView& view) const;

  MultiQueueOptions options_;
  // Home queue per job. Erased at departure; stolen jobs are re-homed at the
  // thief (pull migration moves the queue entry, not just one dispatch).
  std::map<JobId, size_t> home_;
};

}  // namespace affsched

#endif  // SRC_SCHED_MULTIQUEUE_H_
