// Equipartition (Section 5.1), after the "process control" policy of
// [Tucker & Gupta 89]: processors are divided equally among jobs, with
// reallocation only on job arrival and completion. This extreme minimises
// #reallocations (perfect affinity: tasks essentially never move) at the cost
// of maximum waste (idle processors are never redistributed to jobs that
// could use them).

#ifndef SRC_SCHED_EQUIPARTITION_H_
#define SRC_SCHED_EQUIPARTITION_H_

#include "src/sched/policy.h"

namespace affsched {

class Equipartition : public Policy {
 public:
  std::string name() const override { return "Equipartition"; }

  PolicyDecision OnJobArrival(const SchedView& view, JobId job) override;
  PolicyDecision OnJobDeparture(const SchedView& view, JobId job) override;
  PolicyDecision OnProcessorAvailable(const SchedView& view, size_t proc) override;
  PolicyDecision OnRequest(const SchedView& view, JobId job) override;

  // Tasks essentially never move under Equipartition, so the runtime keeps
  // worker/processor pairings stable ("perfect affinity scheduling").
  bool UsesAffinity() const override { return true; }

  // The paper's allocation-number computation: allocation numbers start at
  // zero and are incremented round-robin; a job whose number reaches its
  // maximum parallelism drops out; the process stops when all processors are
  // allocated or no jobs remain. Exposed for unit testing.
  static std::map<JobId, size_t> ComputeTargets(const SchedView& view);

 private:
  PolicyDecision Repartition(const SchedView& view);
};

}  // namespace affsched

#endif  // SRC_SCHED_EQUIPARTITION_H_
