#include "src/sched/rt_static.h"

namespace affsched {

PolicyDecision RtStaticPolicy::Replan(const SchedView& view) {
  std::vector<RtJobInfo> infos;
  for (JobId id : view.ActiveJobs()) {
    RtJobInfo info;
    info.job = id;
    info.max_parallelism = view.MaxParallelism(id);
    info.working_set_blocks = view.WorkingSetBlocks(id);
    info.shared_write_per_s = view.SharedWriteRate(id);
    info.deadline_s = view.DeadlineSeconds(id);
    infos.push_back(info);
  }
  plan_ = ComputeStaticAssignment(
      infos, view.NumProcessors(), view.NumColors(), options_.isolate_colors,
      [&view](size_t from, size_t to) { return view.DistanceTier(from, to); });
  PolicyDecision decision;
  decision.targets = plan_.share;
  return decision;
}

PolicyDecision RtStaticPolicy::OnJobArrival(const SchedView& view, JobId /*job*/) {
  return Replan(view);
}

PolicyDecision RtStaticPolicy::OnJobDeparture(const SchedView& view, JobId /*job*/) {
  return Replan(view);
}

PolicyDecision RtStaticPolicy::OnProcessorAvailable(const SchedView& view, size_t proc) {
  // A processor only ever goes to its planned span owner; if the owner has no
  // use for it right now it stays where it is. This is the same waste /
  // predictability trade Equipartition makes, applied to a fixed map.
  if (proc >= plan_.proc_owner.size() || view.ReassignmentPending(proc)) {
    return {};
  }
  const JobId owner = plan_.proc_owner[proc];
  if (owner == kInvalidJobId || view.ProcessorJob(proc) == owner ||
      view.PendingDemand(owner) == 0) {
    return {};
  }
  PolicyDecision decision;
  Assignment a;
  a.proc = proc;
  a.job = owner;
  a.reason = view.ProcessorJob(proc) == kInvalidJobId ? DecisionReason::kFreeProcessor
                                                      : DecisionReason::kRepartition;
  decision.assignments.push_back(a);
  return decision;
}

PolicyDecision RtStaticPolicy::OnRequest(const SchedView& view, JobId job) {
  // Grant free processors inside the job's own span only.
  for (size_t proc = 0; proc < plan_.proc_owner.size() && proc < view.NumProcessors();
       ++proc) {
    if (plan_.proc_owner[proc] != job || view.ReassignmentPending(proc)) {
      continue;
    }
    if (view.ProcessorJob(proc) != kInvalidJobId) {
      continue;
    }
    PolicyDecision decision;
    Assignment a;
    a.proc = proc;
    a.job = job;
    a.reason = DecisionReason::kFreeProcessor;
    decision.assignments.push_back(a);
    return decision;
  }
  return {};
}

uint64_t RtStaticPolicy::ColorMask(const SchedView& /*view*/, JobId job) {
  if (!options_.isolate_colors) {
    return ~0ull;
  }
  auto it = plan_.color_mask.find(job);
  return it == plan_.color_mask.end() ? ~0ull : it->second;
}

}  // namespace affsched
