#include "src/sched/dynamic.h"

#include <algorithm>

#include "src/common/check.h"

namespace affsched {

std::string DynamicOptions::PolicyName() const {
  if (!use_affinity) {
    return "Dynamic";
  }
  if (!enforce_priority) {
    return "Dyn-Aff-NoPri";
  }
  if (yield_delay > 0) {
    return "Dyn-Aff-Delay";
  }
  if (affinity_tier == 1) {
    return "Dyn-Aff-Cluster";
  }
  if (affinity_tier >= 2) {
    return "Dyn-Aff-Node";
  }
  return "Dyn-Aff";
}

std::vector<JobId> DynamicPolicy::RankedRequesters(const SchedView& view) const {
  std::vector<JobId> requesters;
  for (JobId j : view.ActiveJobs()) {
    if (view.PendingDemand(j) > 0) {
      requesters.push_back(j);
    }
  }
  if (options_.enforce_priority) {
    std::stable_sort(requesters.begin(), requesters.end(), [&view](JobId a, JobId b) {
      return view.Priority(a) > view.Priority(b);
    });
  }
  return requesters;
}

PolicyDecision DynamicPolicy::OnJobArrival(const SchedView& /*view*/, JobId /*job*/) {
  // The engine drives a request loop for the arriving job's demand, which
  // lands in OnRequest; nothing else to do here.
  return {};
}

PolicyDecision DynamicPolicy::OnJobDeparture(const SchedView& /*view*/, JobId /*job*/) {
  // Freed processors are announced individually via OnProcessorAvailable.
  return {};
}

PolicyDecision DynamicPolicy::OnProcessorAvailable(const SchedView& view, size_t proc) {
  PolicyDecision decision;
  const std::vector<JobId> requesters = RankedRequesters(view);

  // Rule A.1: if a task remembered in this processor's history is runnable
  // and not active, and its job's priority is as high as any requester's
  // (always, under NoPri), reunite the task with its cache context. With
  // T = 1 (the paper's configuration) only the most recent task is
  // considered; deeper histories fall back to older residents whose context
  // may partially survive. The distance-aware variants widen the search
  // outward by tier: a task whose context lives on a nearby processor
  // (same cluster — the shared LLC is warm; same node — still beats a
  // remote fetch) is reunited with the nearest surviving level of it. At
  // affinity_tier 0 only this processor's own history is consulted,
  // reducing exactly to the flat-machine rule.
  if (options_.use_affinity) {
    for (size_t tier = 0; tier <= options_.affinity_tier; ++tier) {
      for (size_t p = 0; p < view.NumProcessors(); ++p) {
        if (view.DistanceTier(proc, p) != tier) {
          continue;
        }
        for (CacheOwner candidate : view.RecentTasksOn(p)) {
          if (candidate == kNoOwner || !view.TaskRunnable(candidate)) {
            continue;
          }
          const JobId candidate_job = view.TaskJob(candidate);
          const bool priority_ok =
              !options_.enforce_priority || requesters.empty() ||
              view.Priority(candidate_job) >= view.Priority(requesters.front());
          if (priority_ok && view.PendingDemand(candidate_job) > 0) {
            decision.assignments.push_back(
                Assignment{proc, candidate_job, candidate, DecisionReason::kAffinityReunite});
            return decision;
          }
        }
      }
    }
  }

  if (!requesters.empty()) {
    // Don't hand a willing-to-yield processor back to the job that yielded it
    // (it has no work for it); any other requester may take it.
    for (JobId j : requesters) {
      if (j != view.ProcessorJob(proc)) {
        // Distinguish a genuinely free processor from a willing-to-yield one
        // in the provenance record; the mechanics are identical.
        const DecisionReason reason = view.ProcessorJob(proc) == kInvalidJobId
                                          ? DecisionReason::kFreeProcessor
                                          : DecisionReason::kYieldHandoff;
        decision.assignments.push_back(Assignment{proc, j, kNoOwner, reason});
        return decision;
      }
    }
  }
  return decision;
}

size_t DynamicPolicy::PickPreemptionVictim(const SchedView& view, JobId job) const {
  // Find the job with the largest allocation after committed reassignments
  // (using raw allocations would keep picking the same victim before earlier
  // preemptions have taken effect).
  JobId biggest = kInvalidJobId;
  size_t biggest_alloc = 0;
  for (JobId j : view.ActiveJobs()) {
    if (j == job) {
      continue;
    }
    const size_t alloc = view.EffectiveAllocation(j);
    if (alloc > biggest_alloc) {
      biggest = j;
      biggest_alloc = alloc;
    }
  }
  if (biggest == kInvalidJobId) {
    return kNoProcessor;
  }
  const size_t my_alloc = view.EffectiveAllocation(job);
  // Preempt if it moves the allocations toward equality, or if the requester
  // has banked enough priority credit to claim beyond its share: each
  // processor past equality costs `credit_margin` of priority advantage, so
  // bursts are served but over-holding is self-limiting.
  const bool equalizes = biggest_alloc >= my_alloc + 2;
  bool spend_credit = false;
  if (!equalizes) {
    // Spending credit to go beyond equalisation requires (a) the requester to
    // hold genuine banked credit, (b) the victim to stay at or above its fair
    // share, and (c) a priority gap that grows with how far past equality the
    // transfer lands. (a) and (b) keep two near-fair-share jobs from raiding
    // each other endlessly as their priorities cross zero.
    const double fair =
        static_cast<double>(view.NumProcessors()) / static_cast<double>(view.ActiveJobs().size());
    const bool victim_above_fair = static_cast<double>(biggest_alloc) > fair;
    const double extra = static_cast<double>(my_alloc + 2 - biggest_alloc);
    spend_credit = victim_above_fair && view.Priority(job) > 0.0 &&
                   view.Priority(job) > view.Priority(biggest) + options_.credit_margin * extra;
  }
  if (!equalizes && !spend_credit) {
    return kNoProcessor;
  }
  // Take the highest-numbered uncommitted processor held by the victim job
  // (deterministic and uninteresting — the engine charges the same costs
  // regardless).
  for (size_t p = view.NumProcessors(); p-- > 0;) {
    if (view.ProcessorJob(p) == biggest && !view.ReassignmentPending(p)) {
      return p;
    }
  }
  return kNoProcessor;
}

PolicyDecision DynamicPolicy::OnRequest(const SchedView& view, JobId job) {
  PolicyDecision decision;
  if (view.PendingDemand(job) == 0) {
    return decision;
  }

  // Rule A.2: honour the requesting job's desired processor if it is
  // available (free or willing to yield). Never preempt useful work for
  // affinity: an active task presumably has greater affinity for the
  // processor than the task we are placing. The distance-aware variants
  // fall outward from the desired processor by tier — the nearest available
  // processor still shares a cache level with the task's context. At
  // affinity_tier 0 only the desired processor itself qualifies, reducing
  // exactly to the flat-machine rule.
  if (options_.use_affinity) {
    const size_t desired = view.DesiredProcessor(job);
    if (desired != kNoProcessor) {
      size_t best = kNoProcessor;
      size_t best_tier = options_.affinity_tier + 1;
      for (size_t p = 0; p < view.NumProcessors() && best_tier > 0; ++p) {
        const size_t tier = view.DistanceTier(desired, p);
        if (tier >= best_tier) {
          continue;
        }
        const JobId holder = view.ProcessorJob(p);
        const bool available =
            holder == kInvalidJobId || (holder != job && view.WillingToYield(p));
        if (available) {
          best = p;
          best_tier = tier;
        }
      }
      if (best != kNoProcessor) {
        decision.assignments.push_back(
            Assignment{best, job, kNoOwner, DecisionReason::kAffinityDesired});
        return decision;
      }
    }
  }

  // Rule D.1: any unallocated processor. With affinity enabled, prefer a free
  // processor whose last task belonged to this job.
  size_t free_proc = kNoProcessor;
  for (size_t p = 0; p < view.NumProcessors(); ++p) {
    if (view.ProcessorJob(p) != kInvalidJobId) {
      continue;
    }
    if (free_proc == kNoProcessor) {
      free_proc = p;
    }
    if (options_.use_affinity) {
      const CacheOwner last = view.LastTaskOn(p);
      if (last != kNoOwner && view.TaskJob(last) == job) {
        free_proc = p;
        break;
      }
    } else {
      break;
    }
  }
  if (free_proc != kNoProcessor) {
    decision.assignments.push_back(
        Assignment{free_proc, job, kNoOwner, DecisionReason::kFreeProcessor});
    return decision;
  }

  // Rule D.2: willing-to-yield processors (held by other jobs).
  size_t yield_proc = kNoProcessor;
  for (size_t p = 0; p < view.NumProcessors(); ++p) {
    if (view.ProcessorJob(p) == job || view.ProcessorJob(p) == kInvalidJobId ||
        !view.WillingToYield(p)) {
      continue;
    }
    if (yield_proc == kNoProcessor) {
      yield_proc = p;
    }
    if (options_.use_affinity) {
      const CacheOwner last = view.LastTaskOn(p);
      if (last != kNoOwner && view.TaskJob(last) == job) {
        yield_proc = p;
        break;
      }
    } else {
      break;
    }
  }
  if (yield_proc != kNoProcessor) {
    decision.assignments.push_back(
        Assignment{yield_proc, job, kNoOwner, DecisionReason::kYieldHandoff});
    return decision;
  }

  // Rule D.3: equitable preemption (disabled under NoPri).
  if (options_.enforce_priority) {
    const size_t victim = PickPreemptionVictim(view, job);
    if (victim != kNoProcessor) {
      decision.assignments.push_back(
          Assignment{victim, job, kNoOwner, DecisionReason::kPreemptEquitable});
      return decision;
    }
  }
  return decision;
}

}  // namespace affsched
