#include "src/sched/equipartition.h"

namespace affsched {

std::map<JobId, size_t> Equipartition::ComputeTargets(const SchedView& view) {
  std::map<JobId, size_t> targets;
  const std::vector<JobId> jobs = view.ActiveJobs();
  for (JobId j : jobs) {
    targets[j] = 0;
  }
  size_t remaining = view.NumProcessors();
  bool progress = true;
  while (remaining > 0 && progress) {
    progress = false;
    for (JobId j : jobs) {
      if (remaining == 0) {
        break;
      }
      if (targets[j] < view.MaxParallelism(j)) {
        ++targets[j];
        --remaining;
        progress = true;
      }
    }
  }
  return targets;
}

PolicyDecision Equipartition::Repartition(const SchedView& view) {
  PolicyDecision decision;
  decision.targets = ComputeTargets(view);
  return decision;
}

PolicyDecision Equipartition::OnJobArrival(const SchedView& view, JobId /*job*/) {
  return Repartition(view);
}

PolicyDecision Equipartition::OnJobDeparture(const SchedView& view, JobId /*job*/) {
  return Repartition(view);
}

PolicyDecision Equipartition::OnProcessorAvailable(const SchedView& /*view*/, size_t /*proc*/) {
  // Idle processors are never redistributed between arrivals: this is the
  // policy's deliberate waste / affinity trade.
  return {};
}

PolicyDecision Equipartition::OnRequest(const SchedView& /*view*/, JobId /*job*/) {
  // Requests beyond the equipartition target are ignored.
  return {};
}

}  // namespace affsched
