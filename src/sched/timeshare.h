// Quantum-driven time-sharing baseline.
//
// Not one of the paper's candidate policies — Section 8 argues that previous
// affinity-scheduling work reached different conclusions because it studied
// time sharing, whose quantum-driven involuntary switches make affinity far
// more important. This policy lets us reproduce that comparison as an
// ablation (bench_ablation_timeshare): round-robin rotation of processors
// among jobs on a fixed quantum (DYNIX used 100 ms), with an optional
// affinity preference when rotating.

#ifndef SRC_SCHED_TIMESHARE_H_
#define SRC_SCHED_TIMESHARE_H_

#include "src/sched/policy.h"

namespace affsched {

struct TimeShareOptions {
  SimDuration quantum = Milliseconds(100);
  // When rotating, prefer handing the processor to the job of the task that
  // last ran there (a simple affinity-aware time-sharing variant).
  bool use_affinity = false;
};

class TimeSharePolicy : public Policy {
 public:
  explicit TimeSharePolicy(const TimeShareOptions& options) : options_(options) {}

  std::string name() const override {
    return options_.use_affinity ? "TimeShare-Aff" : "TimeShare";
  }

  PolicyDecision OnJobArrival(const SchedView& view, JobId job) override;
  PolicyDecision OnJobDeparture(const SchedView& view, JobId job) override;
  PolicyDecision OnProcessorAvailable(const SchedView& view, size_t proc) override;
  PolicyDecision OnRequest(const SchedView& view, JobId job) override;

  SimDuration Quantum() const override { return options_.quantum; }
  bool UsesAffinity() const override { return options_.use_affinity; }
  PolicyDecision OnQuantumExpiry(const SchedView& view, size_t proc) override;

 private:
  TimeShareOptions options_;
  // Round-robin cursor over job ids, advanced on each rotation decision.
  size_t rotation_cursor_ = 0;
};

}  // namespace affsched

#endif  // SRC_SCHED_TIMESHARE_H_
