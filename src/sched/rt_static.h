// Static affinity assignment for real-time workloads (rt-static-affinity and
// rt-color-iso).
//
// Where the dynamic policies chase cache context at every decision point, the
// rt policies plan once per arrival/departure from job profiles alone
// (src/rt/static_assign.h): each job gets a fixed processor span, sized
// equipartition-style and placed so communicating workers share an LLC, and —
// in the color-isolating variant — a disjoint slice of the partitioned
// cache's colors. Between plan changes processors are never redistributed, so
// a job's worst-case reload transient is bounded by its own span churn rather
// than by whatever the other jobs are doing.

#ifndef SRC_SCHED_RT_STATIC_H_
#define SRC_SCHED_RT_STATIC_H_

#include "src/rt/static_assign.h"
#include "src/sched/policy.h"

namespace affsched {

struct RtStaticOptions {
  // Carve the partitioned cache's colors into disjoint per-job slices
  // (rt-color-iso). Without it every job reserves all colors and isolation
  // comes from the static spans alone (rt-static-affinity).
  bool isolate_colors = false;
};

class RtStaticPolicy : public Policy {
 public:
  explicit RtStaticPolicy(RtStaticOptions options = {}) : options_(options) {}

  std::string name() const override {
    return options_.isolate_colors ? "RT-Color-Iso" : "RT-Static-Affinity";
  }

  PolicyDecision OnJobArrival(const SchedView& view, JobId job) override;
  PolicyDecision OnJobDeparture(const SchedView& view, JobId job) override;
  PolicyDecision OnProcessorAvailable(const SchedView& view, size_t proc) override;
  PolicyDecision OnRequest(const SchedView& view, JobId job) override;

  // Workers stay inside their job's fixed span.
  bool UsesAffinity() const override { return true; }

  uint64_t ColorMask(const SchedView& view, JobId job) override;

  // The current static plan (unit tests inspect spans and color slices).
  const RtAssignment& plan() const { return plan_; }

 private:
  PolicyDecision Replan(const SchedView& view);

  RtStaticOptions options_;
  RtAssignment plan_;
};

}  // namespace affsched

#endif  // SRC_SCHED_RT_STATIC_H_
