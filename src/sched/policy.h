// The processor-allocation policy interface (the "Minos" role).
//
// The engine (src/engine) owns all machine and job state and consults the
// policy at the decision points Section 5 of the paper describes:
//   * job arrival / departure,
//   * a processor becoming available (freed, or willing-to-yield),
//   * a job requesting additional processors.
// Policies inspect the system through SchedView and answer with processor
// assignments (and, for repartitioning policies like Equipartition, a full
// target allocation). The engine carries out preemptions, context-switch
// costs, and dispatch.

#ifndef SRC_SCHED_POLICY_H_
#define SRC_SCHED_POLICY_H_

#include <cstddef>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "src/cache/exact_cache.h"
#include "src/trace/decision_trace.h"
#include "src/workload/job.h"
#include "src/workload/worker.h"

namespace affsched {

// Read-only view of scheduler-relevant state, implemented by the engine.
class SchedView {
 public:
  virtual ~SchedView() = default;

  virtual size_t NumProcessors() const = 0;

  // Jobs currently in the system, in arrival order.
  virtual std::vector<JobId> ActiveJobs() const = 0;

  // Number of processors currently held by `job`.
  virtual size_t Allocation(JobId job) const = 0;

  // Allocation after all committed (pending) reassignments take effect.
  // Policies should reason about this value to avoid double-preempting.
  virtual size_t EffectiveAllocation(JobId job) const = 0;

  virtual size_t MaxParallelism(JobId job) const = 0;

  // Additional processors the job could use right now (ready threads not yet
  // claimed, capped by max parallelism).
  virtual size_t PendingDemand(JobId job) const = 0;

  // Job holding this processor; kInvalidJobId if the processor is free.
  virtual JobId ProcessorJob(size_t proc) const = 0;

  // True if the holding job has flagged the processor as reallocatable.
  virtual bool WillingToYield(size_t proc) const = 0;

  // True if the processor is already committed to move to another job at the
  // next chunk boundary; policies must not re-assign it.
  virtual bool ReassignmentPending(size_t proc) const = 0;

  // Processor history: the most recent task to have run on `proc`.
  virtual CacheOwner LastTaskOn(size_t proc) const = 0;

  // Full per-processor task history, most-recent-first (length T; the paper
  // evaluates T = 1).
  virtual std::vector<CacheOwner> RecentTasksOn(size_t proc) const = 0;

  // True if `task` is not currently active on some processor but belongs to a
  // job with useful work for it.
  virtual bool TaskRunnable(CacheOwner task) const = 0;

  virtual JobId TaskJob(CacheOwner task) const = 0;

  // Task history (P = 1): the processor the job's next-to-run task last ran
  // on; kNoProcessor if no hint.
  virtual size_t DesiredProcessor(JobId job) const = 0;

  // Usage-based priority (higher = more entitled to processors right now).
  // Implements the credit scheme of [McCann et al. 91]: priority rises while
  // a job uses less than its fair share and falls while it uses more.
  virtual double Priority(JobId job) const = 0;

  // Migration distance tier between two processors (0 = same processor,
  // larger = farther; src/topology). The engine answers from the machine's
  // topology; views without one distinguish only same (0) vs other (1), so
  // policies written against tiers degrade gracefully on flat machines.
  virtual size_t DistanceTier(size_t from, size_t to) const { return from == to ? 0 : 1; }

  // Estimated reload transient `job` would pay to rebuild its working set on
  // `proc`, in seconds: missing blocks x miss service time, evaluated for the
  // job's next-to-run task (the same score the decision trace records per
  // candidate). 0 when nothing would need reloading — including on views
  // without a cache model, so cost-based victim selection degrades to
  // first-candidate order rather than misbehaving.
  virtual double ReloadCostSeconds(JobId job, size_t proc) const {
    (void)job;
    (void)proc;
    return 0.0;
  }

  // Per-job profile facts the static rt policies plan from. Defaulted to
  // zero so views without job profiles (unit-test harnesses) degrade to
  // uniform clustering rather than misbehaving.

  // Working-set size of one worker of `job`, in cache blocks.
  virtual double WorkingSetBlocks(JobId job) const {
    (void)job;
    return 0.0;
  }

  // Shared-data write rate of `job`'s workers (writes/sec) — the coherence
  // traffic that makes co-locating communicating threads on one LLC pay off.
  virtual double SharedWriteRate(JobId job) const {
    (void)job;
    return 0.0;
  }

  // Relative deadline of `job` in seconds; 0 for best-effort jobs.
  virtual double DeadlineSeconds(JobId job) const {
    (void)job;
    return 0.0;
  }

  // Number of cache colors on the machine; 0 when the cache is not
  // partitioned (color-slicing policies then fall back to full masks).
  virtual size_t NumColors() const { return 0; }
};

// Sentinel for Assignment::steal_tier: the assignment is not a steal.
inline constexpr size_t kNoStealTier = static_cast<size_t>(-1);

// Directive: give `proc` to `job`, preferring to dispatch `prefer_task` on it
// (kNoOwner lets the engine pick, which itself prefers an affine worker).
// `reason` is provenance only — the engine realises the assignment the same
// way regardless, but records the code in the decision trace (src/trace).
struct Assignment {
  size_t proc = kNoProcessor;
  JobId job = kInvalidJobId;
  CacheOwner prefer_task = kNoOwner;
  DecisionReason reason = DecisionReason::kUnspecified;
  // Distance tier the work was pulled across when this assignment is a steal
  // (multi-queue policies); kNoStealTier otherwise. Provenance and per-tier
  // steal accounting only — the engine realises the assignment identically.
  size_t steal_tier = kNoStealTier;
};

struct PolicyDecision {
  // Incremental processor assignments.
  std::vector<Assignment> assignments;
  // Full repartition: target processor counts per job. The engine reconciles
  // by preempting over-target jobs and assigning to under-target jobs.
  std::optional<std::map<JobId, size_t>> targets;
};

class Policy {
 public:
  virtual ~Policy() = default;

  virtual std::string name() const = 0;

  // A new job entered the system (it appears in view.ActiveJobs()).
  virtual PolicyDecision OnJobArrival(const SchedView& view, JobId job) = 0;

  // A job left; its processors have already been freed.
  virtual PolicyDecision OnJobDeparture(const SchedView& view, JobId job) = 0;

  // `proc` became available: either it is free (holding job departed) or its
  // holding job marked it willing-to-yield.
  virtual PolicyDecision OnProcessorAvailable(const SchedView& view, size_t proc) = 0;

  // `job` asked for additional processors (PendingDemand(job) > 0). The
  // engine re-invokes this while the policy makes progress and demand
  // remains, so returning a single assignment per call is fine.
  virtual PolicyDecision OnRequest(const SchedView& view, JobId job) = 0;

  // How long a job may hold an idle processor before it is advertised as
  // willing-to-yield (Dyn-Aff-Delay returns > 0).
  virtual SimDuration YieldDelay() const { return 0; }

  // True if the policy (and the job runtime cooperating with it) uses
  // affinity information when placing tasks. When false, the engine models an
  // oblivious runtime: workers are dispatched without regard to where their
  // cache context lives (the paper's plain Dynamic policy).
  virtual bool UsesAffinity() const { return false; }

  // Nonzero enables quantum-driven rescheduling (the TimeShare baseline).
  virtual SimDuration Quantum() const { return 0; }

  // Called on quantum expiry for `proc` when Quantum() > 0.
  virtual PolicyDecision OnQuantumExpiry(const SchedView& view, size_t proc);

  // Nonzero enables the periodic load-balance tick (multi-queue policies).
  // EngineOptions::balance_interval overrides this per run when set.
  virtual SimDuration BalanceInterval() const { return 0; }

  // Called on each balance tick when balancing is enabled; may migrate work
  // between local queues by returning assignments.
  virtual PolicyDecision OnBalanceTick(const SchedView& view);

  // Cache-color reservation for `job`, consulted once at arrival when the
  // machine runs the partitioned cache model (bit i = color i; the engine
  // trims the mask to the machine's color count). The default all-ones mask
  // reserves every color, which keeps non-partitioning policies byte-
  // identical to their flat-cache behaviour on a 1-color machine and merely
  // unisolated on a many-color one.
  virtual uint64_t ColorMask(const SchedView& view, JobId job) {
    (void)view;
    (void)job;
    return ~0ull;
  }
};

}  // namespace affsched

#endif  // SRC_SCHED_POLICY_H_
