#include "src/sched/factory.h"

#include "src/common/check.h"
#include "src/sched/dynamic.h"
#include "src/sched/equipartition.h"
#include "src/sched/multiqueue.h"
#include "src/sched/rt_static.h"
#include "src/sched/timeshare.h"

namespace affsched {

std::unique_ptr<Policy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kEquipartition:
      return std::make_unique<Equipartition>();
    case PolicyKind::kDynamic:
      return std::make_unique<DynamicPolicy>(DynamicOptions{});
    case PolicyKind::kDynAff:
      return std::make_unique<DynamicPolicy>(DynamicOptions{.use_affinity = true});
    case PolicyKind::kDynAffNoPri:
      return std::make_unique<DynamicPolicy>(
          DynamicOptions{.use_affinity = true, .enforce_priority = false});
    case PolicyKind::kDynAffDelay:
      return std::make_unique<DynamicPolicy>(
          DynamicOptions{.use_affinity = true, .yield_delay = kDefaultYieldDelay});
    case PolicyKind::kDynAffCluster:
      return std::make_unique<DynamicPolicy>(
          DynamicOptions{.use_affinity = true, .affinity_tier = 1});
    case PolicyKind::kDynAffNode:
      return std::make_unique<DynamicPolicy>(
          DynamicOptions{.use_affinity = true, .affinity_tier = 2});
    case PolicyKind::kTimeShare:
      return std::make_unique<TimeSharePolicy>(TimeShareOptions{});
    case PolicyKind::kTimeShareAff:
      return std::make_unique<TimeSharePolicy>(TimeShareOptions{.use_affinity = true});
    case PolicyKind::kMqNoSteal:
      return std::make_unique<MultiQueuePolicy>(MultiQueueOptions{.steal_tier = 0});
    case PolicyKind::kMqSibling:
      return std::make_unique<MultiQueuePolicy>(MultiQueueOptions{.steal_tier = 1});
    case PolicyKind::kMqCluster:
      return std::make_unique<MultiQueuePolicy>(MultiQueueOptions{.steal_tier = 2});
    case PolicyKind::kMqNuma:
      return std::make_unique<MultiQueuePolicy>(MultiQueueOptions{.steal_tier = 3});
    case PolicyKind::kRtStaticAffinity:
      return std::make_unique<RtStaticPolicy>(RtStaticOptions{});
    case PolicyKind::kRtColorIso:
      return std::make_unique<RtStaticPolicy>(RtStaticOptions{.isolate_colors = true});
  }
  AFF_CHECK_MSG(false, "unknown policy kind");
}

std::string PolicyKindName(PolicyKind kind) { return MakePolicy(kind)->name(); }

std::string PolicyKindCliName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kEquipartition:
      return "equi";
    case PolicyKind::kDynamic:
      return "dynamic";
    case PolicyKind::kDynAff:
      return "dyn-aff";
    case PolicyKind::kDynAffNoPri:
      return "dyn-aff-nopri";
    case PolicyKind::kDynAffDelay:
      return "dyn-aff-delay";
    case PolicyKind::kDynAffCluster:
      return "dyn-aff-cluster";
    case PolicyKind::kDynAffNode:
      return "dyn-aff-node";
    case PolicyKind::kTimeShare:
      return "timeshare";
    case PolicyKind::kTimeShareAff:
      return "timeshare-aff";
    case PolicyKind::kMqNoSteal:
      return "mq-nosteal";
    case PolicyKind::kMqSibling:
      return "mq-sibling";
    case PolicyKind::kMqCluster:
      return "mq-cluster";
    case PolicyKind::kMqNuma:
      return "mq-numa";
    case PolicyKind::kRtStaticAffinity:
      return "rt-static-affinity";
    case PolicyKind::kRtColorIso:
      return "rt-color-iso";
  }
  AFF_CHECK_MSG(false, "unknown policy kind");
}

bool PolicyKindFromName(const std::string& name, PolicyKind* kind) {
  for (PolicyKind candidate :
       {PolicyKind::kEquipartition, PolicyKind::kDynamic, PolicyKind::kDynAff,
        PolicyKind::kDynAffNoPri, PolicyKind::kDynAffDelay, PolicyKind::kDynAffCluster,
        PolicyKind::kDynAffNode, PolicyKind::kTimeShare, PolicyKind::kTimeShareAff,
        PolicyKind::kMqNoSteal, PolicyKind::kMqSibling, PolicyKind::kMqCluster,
        PolicyKind::kMqNuma, PolicyKind::kRtStaticAffinity, PolicyKind::kRtColorIso}) {
    if (name == PolicyKindCliName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

std::vector<PolicyKind> DynamicFamily() {
  return {PolicyKind::kDynamic, PolicyKind::kDynAff, PolicyKind::kDynAffDelay};
}

std::vector<PolicyKind> TopologyPolicyFamily() {
  return {PolicyKind::kEquipartition, PolicyKind::kDynamic, PolicyKind::kDynAff,
          PolicyKind::kDynAffCluster, PolicyKind::kDynAffNode};
}

std::vector<PolicyKind> MqPolicyFamily() {
  return {PolicyKind::kMqNoSteal, PolicyKind::kMqSibling, PolicyKind::kMqCluster,
          PolicyKind::kMqNuma};
}

bool IsMqPolicy(PolicyKind kind) {
  return kind == PolicyKind::kMqNoSteal || kind == PolicyKind::kMqSibling ||
         kind == PolicyKind::kMqCluster || kind == PolicyKind::kMqNuma;
}

std::string StealPolicyName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kMqNoSteal:
      return "nosteal";
    case PolicyKind::kMqSibling:
      return "sibling";
    case PolicyKind::kMqCluster:
      return "cluster";
    case PolicyKind::kMqNuma:
      return "numa";
    default:
      break;
  }
  AFF_CHECK_MSG(false, "not a multi-queue policy kind");
}

bool PolicyKindFromStealName(const std::string& name, PolicyKind* kind) {
  for (PolicyKind candidate : MqPolicyFamily()) {
    if (name == StealPolicyName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

std::vector<PolicyKind> RtPolicyFamily() {
  return {PolicyKind::kRtStaticAffinity, PolicyKind::kRtColorIso};
}

bool IsRtPolicy(PolicyKind kind) {
  return kind == PolicyKind::kRtStaticAffinity || kind == PolicyKind::kRtColorIso;
}

}  // namespace affsched
