#include "src/sched/factory.h"

#include "src/common/check.h"
#include "src/sched/dynamic.h"
#include "src/sched/equipartition.h"
#include "src/sched/timeshare.h"

namespace affsched {

std::unique_ptr<Policy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kEquipartition:
      return std::make_unique<Equipartition>();
    case PolicyKind::kDynamic:
      return std::make_unique<DynamicPolicy>(DynamicOptions{});
    case PolicyKind::kDynAff:
      return std::make_unique<DynamicPolicy>(DynamicOptions{.use_affinity = true});
    case PolicyKind::kDynAffNoPri:
      return std::make_unique<DynamicPolicy>(
          DynamicOptions{.use_affinity = true, .enforce_priority = false});
    case PolicyKind::kDynAffDelay:
      return std::make_unique<DynamicPolicy>(
          DynamicOptions{.use_affinity = true, .yield_delay = kDefaultYieldDelay});
    case PolicyKind::kDynAffCluster:
      return std::make_unique<DynamicPolicy>(
          DynamicOptions{.use_affinity = true, .affinity_tier = 1});
    case PolicyKind::kDynAffNode:
      return std::make_unique<DynamicPolicy>(
          DynamicOptions{.use_affinity = true, .affinity_tier = 2});
    case PolicyKind::kTimeShare:
      return std::make_unique<TimeSharePolicy>(TimeShareOptions{});
    case PolicyKind::kTimeShareAff:
      return std::make_unique<TimeSharePolicy>(TimeShareOptions{.use_affinity = true});
  }
  AFF_CHECK_MSG(false, "unknown policy kind");
}

std::string PolicyKindName(PolicyKind kind) { return MakePolicy(kind)->name(); }

std::string PolicyKindCliName(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kEquipartition:
      return "equi";
    case PolicyKind::kDynamic:
      return "dynamic";
    case PolicyKind::kDynAff:
      return "dyn-aff";
    case PolicyKind::kDynAffNoPri:
      return "dyn-aff-nopri";
    case PolicyKind::kDynAffDelay:
      return "dyn-aff-delay";
    case PolicyKind::kDynAffCluster:
      return "dyn-aff-cluster";
    case PolicyKind::kDynAffNode:
      return "dyn-aff-node";
    case PolicyKind::kTimeShare:
      return "timeshare";
    case PolicyKind::kTimeShareAff:
      return "timeshare-aff";
  }
  AFF_CHECK_MSG(false, "unknown policy kind");
}

bool PolicyKindFromName(const std::string& name, PolicyKind* kind) {
  for (PolicyKind candidate :
       {PolicyKind::kEquipartition, PolicyKind::kDynamic, PolicyKind::kDynAff,
        PolicyKind::kDynAffNoPri, PolicyKind::kDynAffDelay, PolicyKind::kDynAffCluster,
        PolicyKind::kDynAffNode, PolicyKind::kTimeShare, PolicyKind::kTimeShareAff}) {
    if (name == PolicyKindCliName(candidate)) {
      *kind = candidate;
      return true;
    }
  }
  return false;
}

std::vector<PolicyKind> DynamicFamily() {
  return {PolicyKind::kDynamic, PolicyKind::kDynAff, PolicyKind::kDynAffDelay};
}

std::vector<PolicyKind> TopologyPolicyFamily() {
  return {PolicyKind::kEquipartition, PolicyKind::kDynamic, PolicyKind::kDynAff,
          PolicyKind::kDynAffCluster, PolicyKind::kDynAffNode};
}

}  // namespace affsched
