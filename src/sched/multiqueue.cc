#include "src/sched/multiqueue.h"

#include <algorithm>

namespace affsched {

std::string MultiQueueOptions::PolicyName() const {
  if (steal_tier == 0) {
    return "MQ-NoSteal";
  }
  if (steal_tier == 1) {
    return "MQ-Steal-Sibling";
  }
  if (steal_tier == 2) {
    return "MQ-Steal-Cluster";
  }
  return "MQ-Steal-NUMA";
}

size_t MultiQueuePolicy::HomeOf(JobId job) const {
  const auto it = home_.find(job);
  return it == home_.end() ? kNoProcessor : it->second;
}

std::vector<size_t> MultiQueuePolicy::QueueLoads(const SchedView& view) const {
  std::vector<size_t> loads(view.NumProcessors(), 0);
  for (JobId j : view.ActiveJobs()) {
    const auto it = home_.find(j);
    if (it != home_.end() && it->second < loads.size()) {
      ++loads[it->second];
    }
  }
  return loads;
}

size_t MultiQueuePolicy::EnsureHome(const SchedView& view, JobId job) {
  const auto it = home_.find(job);
  if (it != home_.end()) {
    return it->second;
  }
  // Least-loaded queue, lowest processor number on ties — deterministic and
  // independent of the policy's observation order.
  const std::vector<size_t> loads = QueueLoads(view);
  size_t best = 0;
  for (size_t p = 1; p < loads.size(); ++p) {
    if (loads[p] < loads[best]) {
      best = p;
    }
  }
  home_[job] = best;
  return best;
}

std::vector<JobId> MultiQueuePolicy::RankedRequesters(const SchedView& view) const {
  std::vector<JobId> requesters;
  for (JobId j : view.ActiveJobs()) {
    if (view.PendingDemand(j) > 0) {
      requesters.push_back(j);
    }
  }
  std::stable_sort(requesters.begin(), requesters.end(), [&view](JobId a, JobId b) {
    return view.Priority(a) > view.Priority(b);
  });
  return requesters;
}

PolicyDecision MultiQueuePolicy::OnJobArrival(const SchedView& view, JobId job) {
  // Home the job on the least-loaded queue. The engine then drives the
  // request loop for the arriving job's demand, which lands in OnRequest.
  EnsureHome(view, job);
  return {};
}

PolicyDecision MultiQueuePolicy::OnJobDeparture(const SchedView& /*view*/, JobId job) {
  home_.erase(job);
  return {};
}

PolicyDecision MultiQueuePolicy::OnProcessorAvailable(const SchedView& view, size_t proc) {
  PolicyDecision decision;
  const std::vector<JobId> requesters = RankedRequesters(view);
  if (requesters.empty()) {
    return decision;
  }

  // Serve the local queue first: the best-priority requester homed here.
  // Never hand a willing-to-yield processor back to the job that yielded it.
  for (JobId j : requesters) {
    if (j != view.ProcessorJob(proc) && HomeOf(j) == proc) {
      decision.assignments.push_back(Assignment{proc, j, kNoOwner, DecisionReason::kLocalQueue});
      return decision;
    }
  }

  // Local queue dry: steal, nearest tier first, within the steal radius. At
  // each tier the victim is the requester whose reload transient at the thief
  // is smallest — the job whose cache context is cheapest to rebuild here —
  // with priority order breaking exact-cost ties.
  for (size_t tier = 1; tier <= options_.steal_tier; ++tier) {
    JobId victim = kInvalidJobId;
    double victim_cost = 0.0;
    for (JobId j : requesters) {
      if (j == view.ProcessorJob(proc)) {
        continue;
      }
      const size_t home = HomeOf(j);
      if (home == kNoProcessor || view.DistanceTier(proc, home) != tier) {
        continue;
      }
      const double cost = view.ReloadCostSeconds(j, proc);
      if (victim == kInvalidJobId || cost < victim_cost) {
        victim = j;
        victim_cost = cost;
      }
    }
    if (victim != kInvalidJobId) {
      // Pull migration: the stolen job's queue entry follows it to the thief.
      home_[victim] = proc;
      decision.assignments.push_back(
          Assignment{proc, victim, kNoOwner, DecisionReason::kSteal, tier});
      return decision;
    }
  }
  return decision;
}

PolicyDecision MultiQueuePolicy::OnRequest(const SchedView& view, JobId job) {
  PolicyDecision decision;
  if (view.PendingDemand(job) == 0) {
    return decision;
  }
  const size_t home = EnsureHome(view, job);

  // Push placement: the nearest free processor, home queue first. This side
  // is deliberately unrestricted by steal_tier — a free processor plus unmet
  // demand must always resolve, or the no-steal baseline deadlocks.
  size_t best = kNoProcessor;
  size_t best_tier = SIZE_MAX;
  for (size_t p = 0; p < view.NumProcessors(); ++p) {
    if (view.ProcessorJob(p) != kInvalidJobId) {
      continue;
    }
    const size_t tier = view.DistanceTier(home, p);
    if (tier < best_tier) {
      best = p;
      best_tier = tier;
    }
  }
  if (best != kNoProcessor) {
    const DecisionReason reason =
        best == home ? DecisionReason::kLocalQueue : DecisionReason::kFreeProcessor;
    decision.assignments.push_back(Assignment{best, job, kNoOwner, reason});
    return decision;
  }

  // No free processor: take the nearest willing-to-yield one held by another
  // job (a held-idle processor must not outlast unmet demand).
  best_tier = SIZE_MAX;
  for (size_t p = 0; p < view.NumProcessors(); ++p) {
    const JobId holder = view.ProcessorJob(p);
    if (holder == job || holder == kInvalidJobId || !view.WillingToYield(p)) {
      continue;
    }
    const size_t tier = view.DistanceTier(home, p);
    if (tier < best_tier) {
      best = p;
      best_tier = tier;
    }
  }
  if (best != kNoProcessor) {
    decision.assignments.push_back(
        Assignment{best, job, kNoOwner, DecisionReason::kYieldHandoff});
  }
  return decision;
}

PolicyDecision MultiQueuePolicy::OnBalanceTick(const SchedView& view) {
  PolicyDecision decision;
  const std::vector<size_t> loads = QueueLoads(view);
  if (loads.size() < 2) {
    return decision;
  }
  size_t src = 0;
  size_t dst = 0;
  for (size_t p = 1; p < loads.size(); ++p) {
    if (loads[p] > loads[src]) {
      src = p;
    }
    if (loads[p] < loads[dst]) {
      dst = p;
    }
  }
  if (loads[src] < loads[dst] + 2) {
    return decision;  // moving one job cannot improve the imbalance
  }
  // Migrate the source queue's cheapest-to-move job: smallest reload
  // transient at the destination, lowest JobId on ties (home_ is ordered).
  JobId mover = kInvalidJobId;
  double mover_cost = 0.0;
  for (const auto& [j, home] : home_) {
    if (home != src) {
      continue;
    }
    const double cost = view.ReloadCostSeconds(j, dst);
    if (mover == kInvalidJobId || cost < mover_cost) {
      mover = j;
      mover_cost = cost;
    }
  }
  if (mover == kInvalidJobId) {
    return decision;
  }
  home_[mover] = dst;
  // Realise the migration immediately only when it costs nothing to grant:
  // the destination is free and the mover can use it now. Otherwise the
  // re-homing alone redirects future local-queue dispatches.
  if (view.ProcessorJob(dst) == kInvalidJobId && view.PendingDemand(mover) > 0) {
    decision.assignments.push_back(
        Assignment{dst, mover, kNoOwner, DecisionReason::kBalanceMigrate});
  }
  return decision;
}

}  // namespace affsched
