// MeteredPolicy: a transparent decorator that counts and (optionally)
// wall-clock-times every policy invocation without the wrapped policy
// knowing. This is how the telemetry layer attributes simulator overhead to
// "policy decisions" specifically — the engine and the policies themselves
// stay free of instrumentation.
//
// Scheduling behaviour is bit-identical to the wrapped policy: every hook
// delegates verbatim, including YieldDelay/UsesAffinity/Quantum, so a
// metered run replays the exact same simulated trajectory.

#ifndef SRC_SCHED_METERED_H_
#define SRC_SCHED_METERED_H_

#include <memory>
#include <string>

#include "src/sched/policy.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/profile.h"

namespace affsched {

class MeteredPolicy : public Policy {
 public:
  explicit MeteredPolicy(std::unique_ptr<Policy> inner);

  // Creates "policy.on_arrival", "policy.on_departure", "policy.on_available",
  // "policy.on_request", "policy.on_quantum", "policy.on_balance",
  // "policy.assignments", and "policy.repartitions" counters in `registry`.
  // Pass nullptr to detach.
  // The registry must outlive this policy.
  void AttachMetrics(MetricsRegistry* registry);

  // Accumulates the wall-clock cost of every decision into `section`
  // (nullptr detaches). The section must outlive this policy.
  void AttachProfiler(ProfileSection* section) { profile_ = section; }

  std::string name() const override { return inner_->name(); }
  PolicyDecision OnJobArrival(const SchedView& view, JobId job) override;
  PolicyDecision OnJobDeparture(const SchedView& view, JobId job) override;
  PolicyDecision OnProcessorAvailable(const SchedView& view, size_t proc) override;
  PolicyDecision OnRequest(const SchedView& view, JobId job) override;
  PolicyDecision OnQuantumExpiry(const SchedView& view, size_t proc) override;
  PolicyDecision OnBalanceTick(const SchedView& view) override;
  SimDuration YieldDelay() const override { return inner_->YieldDelay(); }
  bool UsesAffinity() const override { return inner_->UsesAffinity(); }
  SimDuration Quantum() const override { return inner_->Quantum(); }
  SimDuration BalanceInterval() const override { return inner_->BalanceInterval(); }

 private:
  // Counts the decision's side (assignments / full repartition) and returns
  // it unchanged.
  PolicyDecision Account(Counter* hook, PolicyDecision decision);

  std::unique_ptr<Policy> inner_;
  Counter* on_arrival_ = nullptr;
  Counter* on_departure_ = nullptr;
  Counter* on_available_ = nullptr;
  Counter* on_request_ = nullptr;
  Counter* on_quantum_ = nullptr;
  Counter* on_balance_ = nullptr;
  Counter* assignments_ = nullptr;
  Counter* repartitions_ = nullptr;
  ProfileSection* profile_ = nullptr;
};

}  // namespace affsched

#endif  // SRC_SCHED_METERED_H_
