#!/usr/bin/env python3
"""Validate an exported Chrome/Perfetto trace-event JSON file.

Usage:
  tools/check_perfetto_trace.py TRACE.json [--require-decisions] [--require-steals]
                                           [--require-rt]
  tools/check_perfetto_trace.py --run-simctl PATH/TO/simctl [--steals] [--rt]

A minimal schema check for the files ChromeTraceWriter emits (simctl
--chrome-trace): enough structure that chrome://tracing and Perfetto will
load the file, without re-implementing either. Checks:

  * top level is an object with a "traceEvents" array;
  * every event is an object with a known "ph" and the keys that phase
    requires (pid/tid everywhere; ts+name on slices; dur >= 0 on "X";
    id on flow events; "bp":"e" on flow finishes);
  * "B"/"E" events balance per (pid, tid) track and never go negative;
  * timestamps are non-negative and non-decreasing within each B/E track;
  * every flow-finish ("f") id was started by some flow-start ("s").

With --require-decisions the file must additionally carry the decision
provenance layer: a pid-3 scheduler process with at least one "decision"
slice, at least one flow start, and at least one flow finish.

With --require-steals (implies the decision checks) the trace must carry
multi-queue steal provenance: at least one "decision" slice whose name is
the "steal" reason code, each such slice carrying a "site" arg and paired
with a flow start on the same (pid, tid, ts) — the arrow from the steal
decision to the dispatch it caused.

With --require-rt the trace must carry the real-time layer: at least one
"deadline miss" instant (cat "rt"), every one of them on the pid-2 jobs
process and on a track that also carried a job lifecycle span (the miss
marker pairs with the span it annotates, even though it is emitted after
the span closes).

--run-simctl builds the fixture itself: it runs the given simctl binary in
a temp directory with --chrome-trace/--decision-trace/--spans, then
validates the result with --require-decisions. With --steals it runs the
mq-numa steal policy on the hierarchical mq-preset machine instead and
validates with --require-steals. With --rt it runs the rt-static-affinity
policy on an 8-color machine under the guaranteed-miss "tight" deadline
mix and validates with --require-rt. This is what the tier-1 ctests use.
Exit status: 0 valid, 1 invalid, 2 usage/IO error.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import subprocess
import sys
import tempfile
from pathlib import Path

KNOWN_PHASES = {"M", "B", "E", "X", "i", "I", "C", "s", "t", "f"}
# Keys every event of the phase must carry (beyond pid/tid, checked for all).
REQUIRED_KEYS = {
    "M": ("name", "args"),
    "B": ("name", "ts"),
    "E": ("ts",),
    "X": ("name", "ts", "dur"),
    "i": ("name", "ts", "s"),
    "I": ("name", "ts"),
    "C": ("name", "ts", "args"),
    "s": ("name", "ts", "id"),
    "t": ("name", "ts", "id"),
    "f": ("name", "ts", "id", "bp"),
}


def validate(doc, require_decisions=False, require_steals=False, require_rt=False):
    """Returns a list of problem strings; empty means the trace is valid."""
    require_decisions = require_decisions or require_steals
    problems = []
    if not isinstance(doc, dict) or not isinstance(doc.get("traceEvents"), list):
        return ['top level must be an object with a "traceEvents" array']
    events = doc["traceEvents"]
    if not events:
        problems.append("traceEvents is empty")

    depth = {}       # (pid, tid) -> open B count
    last_ts = {}     # (pid, tid) -> last B/E timestamp
    flow_starts, flow_finishes = set(), set()
    flow_start_sites = set()     # (pid, tid, ts) of each flow start
    steal_slices = []            # (index, (pid, tid, ts)) of "steal" decisions
    rt_instants = []             # (index, (pid, tid)) of "deadline miss" markers
    span_tracks = set()          # (pid, tid) tracks that carried a "B" span
    pids = set()
    decision_slices = 0

    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            problems.append(f"{where}: event is not an object")
            continue
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            problems.append(f"{where}: unknown or missing ph {ph!r}")
            continue
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                problems.append(f"{where} (ph={ph}): missing integer {key!r}")
        for key in REQUIRED_KEYS[ph]:
            if key not in ev:
                problems.append(f"{where} (ph={ph}): missing required key {key!r}")
        ts = ev.get("ts")
        if ts is not None and (not isinstance(ts, (int, float)) or ts < 0):
            problems.append(f"{where}: ts must be a non-negative number, got {ts!r}")

        pids.add(ev.get("pid"))
        track = (ev.get("pid"), ev.get("tid"))
        if ph == "B":
            depth[track] = depth.get(track, 0) + 1
            span_tracks.add(track)
        elif ph == "E":
            depth[track] = depth.get(track, 0) - 1
            if depth[track] < 0:
                problems.append(f'{where}: "E" with no open "B" on track {track}')
        if ph in ("B", "E") and isinstance(ts, (int, float)):
            if ts < last_ts.get(track, float("-inf")):
                problems.append(
                    f"{where}: ts {ts} goes backwards on track {track} "
                    f"(last {last_ts[track]})")
            last_ts[track] = ts
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"{where}: X slice dur must be >= 0, got {dur!r}")
            if ev.get("cat") == "decision":
                decision_slices += 1
                if ev.get("name") == "steal":
                    steal_slices.append((i, track + (ts,)))
                    args_obj = ev.get("args")
                    if not isinstance(args_obj, dict) or \
                            not isinstance(args_obj.get("site"), str):
                        problems.append(
                            f'{where}: steal decision slice must carry a '
                            f'"site" string in args')
        if ph == "i" and ev.get("cat") == "rt":
            rt_instants.append((i, track))
        if ph == "f" and ev.get("bp") != "e":
            problems.append(f'{where}: flow finish must use "bp":"e", got {ev.get("bp")!r}')
        if ph == "s":
            flow_starts.add(ev.get("id"))
            flow_start_sites.add(track + (ts,))
        if ph == "f":
            flow_finishes.add(ev.get("id"))

    for track, d in sorted(depth.items(), key=str):
        if d != 0:
            problems.append(f'track {track}: {d} unbalanced "B" event(s)')
    orphans = flow_finishes - flow_starts
    if orphans:
        sample = sorted(orphans)[:5]
        problems.append(
            f"{len(orphans)} flow finish id(s) with no matching start, e.g. {sample}")

    if require_decisions:
        if 3 not in pids:
            problems.append("decision layer required but no pid-3 scheduler process found")
        if decision_slices == 0:
            problems.append('decision layer required but no "decision" X slices found')
        if not flow_starts:
            problems.append("decision layer required but no flow starts found")
        if not flow_finishes:
            problems.append("decision layer required but no flow finishes found")

    if require_steals:
        if not steal_slices:
            problems.append(
                'steal provenance required but no "steal" decision slices found')
        for i, site in steal_slices:
            if site not in flow_start_sites:
                problems.append(
                    f"traceEvents[{i}]: steal decision slice has no flow start "
                    f"on its (pid, tid, ts) {site}")

    if require_rt:
        if not rt_instants:
            problems.append('rt layer required but no "rt" instant markers found')
        for i, track in rt_instants:
            if track[0] != 2:
                problems.append(
                    f"traceEvents[{i}]: rt instant must live on the pid-2 jobs "
                    f"process, got pid {track[0]}")
            elif track not in span_tracks:
                problems.append(
                    f"traceEvents[{i}]: rt instant on track {track} pairs with "
                    f"no job lifecycle span")

    return problems


def check_file(path, require_decisions, require_steals=False, require_rt=False):
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        print(f"{path}: {e}", file=sys.stderr)
        return 2
    problems = validate(doc, require_decisions, require_steals, require_rt)
    if problems:
        print(f"{path}: INVALID — {len(problems)} problem(s):", file=sys.stderr)
        for p in problems[:25]:
            print(f"  {p}", file=sys.stderr)
        if len(problems) > 25:
            print(f"  ... and {len(problems) - 25} more", file=sys.stderr)
        return 1
    n = len(doc["traceEvents"])
    print(f"{path}: OK ({n} events, pids "
          f"{sorted(p for p in {e.get('pid') for e in doc['traceEvents']} if p is not None)})")
    return 0


def run_simctl(binary, steals=False, rt=False):
    with tempfile.TemporaryDirectory(prefix="affsched-trace-") as tmp:
        tmp = Path(tmp)
        trace = tmp / "trace.json"
        if steals:
            # The mq-preset machine: widest steal radius on the hierarchical
            # topology, so the trace carries tier-1..3 steal decisions.
            scenario = [
                "--mix=5", "--policy=mq-numa", "--procs=16", "--seed=42",
                "--topology=numa-4x8,cores-per-cluster=4,clusters-per-node=2",
            ]
        elif rt:
            # The rt-preset machine under the guaranteed-miss tight mix, so
            # every deadline-bearing job contributes a miss marker.
            scenario = [
                "--mix=5", "--policy=rt-static-affinity", "--procs=16", "--seed=42",
                "--rt", "--deadline-mix=tight", "--colors=8",
            ]
        else:
            scenario = ["--mix=5", "--policy=dyn-aff", "--procs=16", "--seed=42"]
        cmd = [
            binary, *scenario,
            f"--chrome-trace={trace}",
            f"--decision-trace={tmp / 'decisions.jsonl'}",
            f"--spans={tmp / 'spans.jsonl'}",
        ]
        print("+", " ".join(cmd))
        result = subprocess.run(cmd, stdout=subprocess.DEVNULL)
        if result.returncode != 0:
            print(f"simctl exited {result.returncode}", file=sys.stderr)
            return 2
        for side in ("decisions.jsonl", "spans.jsonl"):
            if not (tmp / side).stat().st_size:
                print(f"{side}: empty sidecar output", file=sys.stderr)
                return 1
        return check_file(trace, require_decisions=True, require_steals=steals,
                          require_rt=rt)


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("trace", nargs="?", help="trace-event JSON file to check")
    parser.add_argument("--require-decisions", action="store_true",
                        help="fail unless the decision provenance layer is present")
    parser.add_argument("--require-steals", action="store_true",
                        help="fail unless the trace carries paired 'steal' "
                             "decision slices (implies --require-decisions)")
    parser.add_argument("--run-simctl", metavar="BINARY",
                        help="run this simctl binary to produce the trace, then "
                             "validate it with --require-decisions")
    parser.add_argument("--require-rt", action="store_true",
                        help="fail unless the trace carries 'deadline miss' "
                             "instants paired with job lifecycle spans")
    parser.add_argument("--steals", action="store_true",
                        help="with --run-simctl: run the mq-numa steal policy "
                             "on the hierarchical machine and validate with "
                             "--require-steals")
    parser.add_argument("--rt", action="store_true",
                        help="with --run-simctl: run rt-static-affinity under "
                             "the tight deadline mix on an 8-color machine and "
                             "validate with --require-rt")
    args = parser.parse_args()

    if args.run_simctl:
        return run_simctl(args.run_simctl, steals=args.steals, rt=args.rt)
    if not args.trace:
        parser.error("either TRACE.json or --run-simctl is required")
    return check_file(args.trace, args.require_decisions, args.require_steals,
                      args.require_rt)


if __name__ == "__main__":
    sys.exit(main())
