#!/usr/bin/env python3
"""Reference client for the affsched_served sweep daemon.

The wire protocol is line-delimited JSON over a Unix-domain stream socket
(see src/serve/wire.h). This client is the protocol's executable
documentation: everything it does fits in a screenful, and anything it can
do, any language with sockets and a JSON library can do too.

Usage:
  tools/affsched_client.py --socket /tmp/aff.sock ping
  tools/affsched_client.py --socket /tmp/aff.sock submit "smoke;reps=2" \
      [--jobs 4] [--out result.json] [--quiet]
  tools/affsched_client.py --socket /tmp/aff.sock stats
  tools/affsched_client.py --socket /tmp/aff.sock shutdown

`submit` streams the daemon's per-cell events to stderr and exits 0 only on
a terminal "done" event. With --out, the embedded result document — byte-
identical to `simctl --sweep` output for the same spec — is saved verbatim.
`submit` prints one summary JSON object to stdout:
  {"cells": N, "hits": N, "executed": N, "remote": N}
"""

import argparse
import json
import socket
import sys


class LineSocket:
    """Blocking line-framed JSON over a connected socket."""

    def __init__(self, path):
        self.sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        self.sock.connect(path)
        self.buffer = b""

    def send(self, obj):
        self.sock.sendall(json.dumps(obj).encode() + b"\n")

    def recv(self):
        """Returns the next decoded JSON line, or None on EOF."""
        while b"\n" not in self.buffer:
            chunk = self.sock.recv(65536)
            if not chunk:
                if self.buffer:
                    line, self.buffer = self.buffer, b""
                    return json.loads(line)
                return None
            self.buffer += chunk
        line, self.buffer = self.buffer.split(b"\n", 1)
        return json.loads(line)

    def close(self):
        self.sock.close()


def one_shot(channel, request, expect_event):
    channel.send(request)
    event = channel.recv()
    if event is None:
        print("daemon closed the connection", file=sys.stderr)
        return 1
    print(json.dumps(event))
    return 0 if event.get("event") == expect_event else 1


def submit(channel, args):
    request = {"op": "submit", "spec": args.spec}
    if args.jobs:
        request["jobs"] = args.jobs
    channel.send(request)
    summary = None
    while True:
        event = channel.recv()
        if event is None:
            print("daemon closed the connection before done", file=sys.stderr)
            return 1
        kind = event.get("event")
        if kind == "error":
            print("server error: %s" % event.get("message"), file=sys.stderr)
            return 1
        if kind in ("planned", "cell") and not args.quiet:
            print(json.dumps(event), file=sys.stderr)
        if kind == "result":
            summary = {k: event.get(k, 0) for k in ("cells", "hits", "executed", "remote")}
            if args.out:
                with open(args.out, "w") as f:
                    f.write(event["json"])
        if kind == "done":
            if summary is None:
                print("done arrived without a result event", file=sys.stderr)
                return 1
            print(json.dumps(summary))
            return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--socket", required=True, help="daemon Unix socket path")
    sub = parser.add_subparsers(dest="op", required=True)
    p_submit = sub.add_parser("submit", help="run a sweep spec via the daemon")
    p_submit.add_argument("spec", help="sweep spec string (same syntax as simctl --sweep)")
    p_submit.add_argument("--jobs", type=int, default=0, help="server worker threads")
    p_submit.add_argument("--out", help="save the result JSON document here")
    p_submit.add_argument("--quiet", action="store_true", help="suppress per-cell events")
    sub.add_parser("stats", help="print cache/service counters")
    sub.add_parser("ping", help="liveness check")
    sub.add_parser("shutdown", help="stop the daemon")
    args = parser.parse_args()

    channel = LineSocket(args.socket)
    try:
        if args.op == "submit":
            return submit(channel, args)
        expect = {"stats": "stats", "ping": "pong", "shutdown": "bye"}[args.op]
        return one_shot(channel, {"op": args.op}, expect)
    finally:
        channel.close()


if __name__ == "__main__":
    sys.exit(main())
