#!/usr/bin/env python3
"""Render and diff affsched sweep results.

Usage:
  tools/affsched_report.py summary RESULT.json
  tools/affsched_report.py diff CURRENT.json BASELINE.json [--threshold 0.02]

summary: prints human-readable tables for any result document the toolchain
writes — a closed sweep (schema_version 1 or 3, `simctl --sweep`), an open
sweep (schema_version 2, `simctl --open`), or a run manifest
(`simctl --manifest`). Schema-3 documents additionally get the
affinity-efficiency table from their "observability" block and the
deadline/tardiness table from their "rt" block (`simctl --sweep=rt`).
Statistics that are missing or NaN (e.g. percentiles of a cell that
completed zero jobs) render as "n/a".

diff: compares two result documents of the same kind, prints per-metric
deltas and a per-policy worst-drift table, and exits nonzero if — and only
if — some metric drifts beyond --threshold (relative, default 2%). Closed
sweeps gate mean response times and vs-equi ratios; open sweeps gate
p50/p95/p99 sojourn and reject rate. Use it to answer "did this change move
the paper's numbers?" in CI or by hand.

Stdlib only; no third-party dependencies.
"""

import argparse
import json
import math
import sys


# --- formatting --------------------------------------------------------------

def fmt(value, digits=3):
    """Format a numeric stat; None/NaN/inf render as n/a (zero-job cells)."""
    if value is None:
        return "n/a"
    try:
        v = float(value)
    except (TypeError, ValueError):
        return str(value)
    if not math.isfinite(v):
        return "n/a"
    return f"{v:.{digits}f}"


def render_table(header, rows):
    widths = [len(h) for h in header]
    for row in rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(str(cell)))
    lines = []
    lines.append("  ".join(h.ljust(widths[i]) for i, h in enumerate(header)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(c).ljust(widths[i]) for i, c in enumerate(row)))
    return "\n".join(lines)


def load(path):
    with open(path) as f:
        return json.load(f)


def doc_kind(doc):
    schema = doc.get("schema_version")
    if schema in (1, 3):
        return "sweep"
    if schema == 2:
        return "open"
    if doc.get("tool") in ("simctl", "simctl-open") or "git_sha" in doc:
        return "manifest"
    return None


# --- summary -----------------------------------------------------------------

def summarize_sweep(doc):
    spec = doc["spec"]
    print(f"sweep '{spec['name']}' (schema {doc['schema_version']}): "
          f"seed {spec['root_seed']}, {spec['machine']['procs']} procs, "
          f"{len(doc['experiments'])} experiments")
    print()

    ratios = {(r["mix"], r["policy"], r["job"]): r["ratio"]
              for r in doc.get("relative_response", [])}
    rows = []
    for exp in doc["experiments"]:
        for job in exp["jobs"]:
            key = (exp["mix"], exp["policy"], job["index"])
            rows.append([
                exp["mix"], exp["policy"],
                f"{job['app']} ({job['index']})", exp["replications"],
                fmt(job.get("mean_response_s"), 2),
                fmt(job.get("ci_half_width_s"), 2),
                fmt(ratios.get(key), 3) if key in ratios else "-",
            ])
    print(render_table(
        ["mix", "policy", "job", "reps", "mean RT (s)", "ci (s)", "vs equi"],
        rows))

    obs = doc.get("observability", {}).get("experiments")
    if obs:
        print()
        rows = []
        for entry in obs:
            m = entry.get("migrations", {})
            rows.append([
                entry["mix"], entry["policy"],
                fmt(entry.get("reload_transient_fraction"), 4),
                fmt(entry.get("affine_fraction"), 3),
                m.get("same_core", 0), m.get("same_cluster", 0),
                m.get("same_node", 0), m.get("cross_node", 0),
            ])
        print(render_table(
            ["mix", "policy", "reload frac", "affine frac",
             "mig core", "mig cluster", "mig node", "mig cross"],
            rows))

    rt = doc.get("rt", {})
    if rt.get("experiments"):
        print()
        print(f"real-time ({rt.get('deadline_mix', '?')} deadline mix):")
        rows = []
        for entry in rt["experiments"]:
            rows.append([
                entry["mix"], entry["policy"], entry.get("completions", 0),
                entry.get("deadline_misses", 0),
                fmt(entry.get("deadline_miss_rate"), 3),
                fmt(entry.get("mean_tardiness_s"), 4),
                fmt(entry.get("p99_tardiness_s"), 4),
                fmt(entry.get("worst_reload_s"), 6),
            ])
        print(render_table(
            ["mix", "policy", "done", "misses", "miss rate",
             "mean tardy (s)", "p99 tardy (s)", "worst reload (s)"],
            rows))


def summarize_open(doc):
    spec = doc["spec"]
    print(f"open sweep '{spec['name']}' (schema 2): seed {spec['root_seed']}, "
          f"{len(doc['cells'])} cells")
    print()
    rows = []
    for cell in doc["cells"]:
        rows.append([
            cell["arrivals"], fmt(cell["rho"], 2), cell["policy"], cell["rep"],
            fmt(cell.get("p50_sojourn_s"), 2), fmt(cell.get("p95_sojourn_s"), 2),
            fmt(cell.get("p99_sojourn_s"), 2),
            fmt(100.0 * cell.get("reject_rate", 0.0), 1),
            "ok" if cell.get("littles_law", {}).get("ok") else "FAIL",
        ])
    print(render_table(
        ["arrivals", "rho", "policy", "rep", "p50 (s)", "p95 (s)", "p99 (s)",
         "rej %", "L=lamW"],
        rows))


def summarize_manifest(doc):
    print(f"run manifest: tool {doc.get('tool', '?')}, "
          f"git {doc.get('git_rev', doc.get('git_sha', '?'))}, "
          f"host {doc.get('hostname', '?')}")
    rows = [[k, json.dumps(v)] for k, v in sorted(doc.items())
            if k not in ("metrics", "profile", "argv")]
    print()
    print(render_table(["key", "value"], rows))
    if "argv" in doc:
        print()
        print("argv:", " ".join(doc["argv"]))
    metrics = doc.get("metrics")
    if isinstance(metrics, dict):
        print(f"\nmetrics: {sum(len(v) for v in metrics.values() if isinstance(v, list))} "
              "entries (use jq for details)")


def cmd_summary(args):
    doc = load(args.result)
    kind = doc_kind(doc)
    if kind == "sweep":
        summarize_sweep(doc)
    elif kind == "open":
        summarize_open(doc)
    elif kind == "manifest":
        summarize_manifest(doc)
    else:
        sys.exit(f"{args.result}: unrecognized result document")
    return 0


# --- diff --------------------------------------------------------------------

def drift(base, cur):
    """Relative drift; NaN-aware (NaN vs NaN = no drift, NaN vs number = inf)."""
    b = float("nan") if base is None else float(base)
    c = float("nan") if cur is None else float(cur)
    if math.isnan(b) and math.isnan(c):
        return 0.0
    if math.isnan(b) or math.isnan(c):
        return float("inf")
    if b == 0.0:
        return abs(c)
    return abs(c - b) / abs(b)


def sweep_metrics(doc):
    """Flat {(metric, mix, policy, job): value} map for a closed sweep."""
    out = {}
    for exp in doc["experiments"]:
        for job in exp["jobs"]:
            out[("mean_response_s", exp["mix"], exp["policy"], job["index"])] = \
                job.get("mean_response_s")
    for r in doc.get("relative_response", []):
        out[("vs_equi_ratio", r["mix"], r["policy"], r["job"])] = r["ratio"]
    # Real-time documents gate the deadline terms too; the job slot is the
    # literal "rt" because these aggregate over the experiment's jobs.
    for entry in doc.get("rt", {}).get("experiments", []):
        key = (entry["mix"], entry["policy"], "rt")
        for field in ("deadline_miss_rate", "p99_tardiness_s", "worst_reload_s"):
            out[(field,) + key] = entry.get(field)
    return out


def open_metrics(doc):
    out = {}
    for cell in doc["cells"]:
        key = (cell["arrivals"], cell["rho"], cell["policy"], cell["rep"])
        for field in ("p50_sojourn_s", "p95_sojourn_s", "p99_sojourn_s",
                      "reject_rate"):
            out[(field,) + key] = cell.get(field)
    return out


def cmd_diff(args):
    current, baseline = load(args.current), load(args.baseline)
    kinds = doc_kind(current), doc_kind(baseline)
    if kinds[0] != kinds[1] or kinds[0] not in ("sweep", "open"):
        sys.exit(f"cannot diff a {kinds[0]} document against a {kinds[1]} one")
    extract = sweep_metrics if kinds[0] == "sweep" else open_metrics
    cur, base = extract(current), extract(baseline)

    regressions = []
    worst_by_policy = {}
    rows = []
    for key in sorted(base, key=str):
        policy = key[2]
        d = drift(base[key], cur.get(key))
        worst_by_policy[policy] = max(worst_by_policy.get(policy, 0.0), d)
        exceeded = d > args.threshold
        if exceeded:
            regressions.append(
                f"{key}: {fmt(base[key])} -> {fmt(cur.get(key))} "
                f"({'missing' if key not in cur else f'{d:+.2%} drift'})")
        if exceeded or args.all:
            rows.append([
                key[0], *key[1:],
                fmt(base[key]), fmt(cur.get(key)),
                "n/a" if not math.isfinite(d) else f"{d:.2%}",
                "<-- DRIFT" if exceeded else "",
            ])
    for key in sorted(cur, key=str):
        if key not in base:
            rows.append([key[0], *key[1:], "n/a", fmt(cur[key]), "new", ""])

    if rows:
        n_keys = max(len(r) for r in rows) - 5
        header = ["metric"] + [f"k{i}" for i in range(n_keys)] + \
                 ["baseline", "current", "drift", ""]
        print(render_table(header, rows))
        print()
    print(render_table(
        ["policy", "worst drift"],
        [[p, "n/a" if not math.isfinite(d) else f"{d:.2%}"]
         for p, d in sorted(worst_by_policy.items())]))

    if regressions:
        print(f"\nFAIL: {len(regressions)} metric(s) drift beyond "
              f"{args.threshold:.0%}:", file=sys.stderr)
        for r in regressions:
            print(f"  {r}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(base)} metrics within {args.threshold:.0%} of baseline")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    sub = parser.add_subparsers(dest="command", required=True)

    p_summary = sub.add_parser("summary", help="render a result document")
    p_summary.add_argument("result")
    p_summary.set_defaults(func=cmd_summary)

    p_diff = sub.add_parser("diff", help="compare two result documents")
    p_diff.add_argument("current")
    p_diff.add_argument("baseline")
    p_diff.add_argument("--threshold", type=float, default=0.02,
                        help="max allowed relative drift (default 0.02)")
    p_diff.add_argument("--all", action="store_true",
                        help="print every compared metric, not just drifts")
    p_diff.set_defaults(func=cmd_diff)

    args = parser.parse_args()
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
