#!/usr/bin/env python3
"""Compare a sweep-runner BENCH json against the committed baseline.

Usage: tools/bench_compare.py CURRENT.json BASELINE.json [--tolerance 0.10]

Both files are `simctl --sweep` output (schema_version 1). The gate fails if:
  * the two files were produced from different grids (spec mismatch),
  * any relative_response ratio drifts more than --tolerance (relative)
    from the baseline ratio,
  * any per-job mean_response_s drifts more than --tolerance, or
  * an affinity policy's ratio exceeds the sanity bound (--max-ratio,
    default 1.10): affinity scheduling must never be grossly worse than
    Equipartition, the paper's central claim.

With a deterministic sweep (fixed replication count, derived per-cell
seeds) the expected drift is exactly zero, so any nonzero delta means the
simulation changed; the tolerance only forgives intentional, reviewed
model changes that come with a baseline refresh.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    if doc.get("schema_version") != 1:
        sys.exit(f"{path}: unsupported schema_version {doc.get('schema_version')!r}")
    return doc


def spec_key(doc):
    spec = doc["spec"]
    return (
        spec["name"].split(";")[0],
        spec["root_seed"],
        tuple(spec["policies"]),
        tuple(spec["mixes"]),
        spec["machine"]["procs"],
    )


def ratio_map(doc):
    return {
        (r["mix"], r["policy"], r["job"]): r["ratio"]
        for r in doc.get("relative_response", [])
    }


def response_map(doc):
    out = {}
    for exp in doc["experiments"]:
        for job in exp["jobs"]:
            out[(exp["mix"], exp["policy"], job["index"])] = job["mean_response_s"]
    return out


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max allowed relative drift (default 0.10)")
    parser.add_argument("--max-ratio", type=float, default=1.10,
                        help="sanity bound on policy-vs-equi response ratios")
    args = parser.parse_args()

    current = load(args.current)
    baseline = load(args.baseline)

    failures = []
    if spec_key(current) != spec_key(baseline):
        failures.append(
            f"spec mismatch: current {spec_key(current)} vs baseline {spec_key(baseline)}")

    cur_ratios, base_ratios = ratio_map(current), ratio_map(baseline)
    for key in sorted(base_ratios):
        if key not in cur_ratios:
            failures.append(f"ratio missing from current run: {key}")
            continue
        base, cur = base_ratios[key], cur_ratios[key]
        drift = abs(cur - base) / abs(base) if base else abs(cur)
        mark = "" if drift <= args.tolerance else "  <-- DRIFT"
        if mark:
            failures.append(
                f"ratio {key}: {base:.4f} -> {cur:.4f} ({drift:+.1%} drift)")
        print(f"ratio mix={key[0]} policy={key[1]:<8} job={key[2]}: "
              f"baseline {base:.4f} current {cur:.4f}{mark}")
        if cur > args.max_ratio:
            failures.append(
                f"ratio {key}: {cur:.4f} exceeds sanity bound {args.max_ratio}")

    cur_resp, base_resp = response_map(current), response_map(baseline)
    for key in sorted(base_resp):
        if key not in cur_resp:
            failures.append(f"experiment missing from current run: {key}")
            continue
        base, cur = base_resp[key], cur_resp[key]
        drift = abs(cur - base) / base
        if drift > args.tolerance:
            failures.append(
                f"mean_response_s {key}: {base:.3f}s -> {cur:.3f}s ({drift:+.1%} drift)")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(base_ratios)} ratios and {len(base_resp)} response times "
          f"within {args.tolerance:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
