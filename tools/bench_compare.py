#!/usr/bin/env python3
"""Compare a sweep-runner BENCH json against the committed baseline.

Usage: tools/bench_compare.py CURRENT.json BASELINE.json [--tolerance 0.10]
       tools/bench_compare.py --subset CURRENT.json BASELINE.json
       tools/bench_compare.py --microbench GBENCH.json BASELINE.json

Default mode: both files are `simctl --sweep` output (schema_version 1) or
`simctl --open` output (schema_version 2, "mode":"open") — the mode is
detected from the files and both must match. For closed sweeps the gate
fails if:
  * the two files were produced from different grids (spec mismatch),
  * any relative_response ratio drifts more than --tolerance (relative)
    from the baseline ratio,
  * any per-job mean_response_s drifts more than --tolerance, or
  * an affinity policy's ratio exceeds the sanity bound (--max-ratio,
    default 1.10): affinity scheduling must never be grossly worse than
    Equipartition, the paper's central claim.

For open sweeps (schema 2) the gate fails if the grids differ, if any
cell's p50/p95/p99 sojourn or reject rate drifts more than --tolerance,
or if any current cell's built-in Little's-law check failed.

With a deterministic sweep (fixed replication count, derived per-cell
seeds) the expected drift is exactly zero, so any nonzero delta means the
simulation changed; the tolerance only forgives intentional, reviewed
model changes that come with a baseline refresh.

--subset mode (closed sweeps only): CURRENT ran a slice of BASELINE's
grid — e.g. the CI policy matrix runs `mq;steal=<name>` one steal policy
at a time against the full committed mq golden. The spec gate relaxes to
"CURRENT's policies and mixes are subsets of BASELINE's" (name, seed and
machine must still match), and only the keys present in CURRENT are
value-compared; a current key absent from the baseline still fails. Cell
seeds derive from (root_seed, mix, rep) alone, so a subset run reproduces
the full run's trajectories exactly and the same zero-drift expectation
applies.

--microbench mode: GBENCH.json is Google Benchmark output
(`bench_sim_microbench --benchmark_out=... --benchmark_out_format=json`,
ideally with --benchmark_repetitions); BASELINE.json is the committed sweep
baseline, whose object named by --floors-key (default "microbench"; the
open-system load bench gates against "microbench_opensys") maps benchmark
names to items_per_second floors. The gate takes the MAX items/sec across
repetitions (single-core CI boxes dip, they do not spike, so the max is
the least noisy estimate of real throughput) and fails on a >--tolerance
drop below the floor. Throughput gains do not fail the gate — raise the
recorded floor when one lands.
"""

import argparse
import json
import sys


def load(path):
    with open(path) as f:
        doc = json.load(f)
    # Schema 3 is schema 1 plus an opt-in "observability" object; every field
    # this gate reads is identical.
    if doc.get("schema_version") not in (1, 2, 3):
        sys.exit(f"{path}: unsupported schema_version {doc.get('schema_version')!r}")
    return doc


def is_open(doc):
    return doc.get("schema_version") == 2 and doc.get("mode") == "open"


def spec_key(doc):
    spec = doc["spec"]
    return (
        spec["name"].split(";")[0],
        spec["root_seed"],
        tuple(spec["policies"]),
        tuple(spec["mixes"]),
        spec["machine"]["procs"],
    )


def subset_spec_failure(current, baseline):
    """Spec check for --subset: same grid, but a slice of policies/mixes."""
    cur, base = current["spec"], baseline["spec"]
    problems = []
    for field, c, b in (
        ("name", cur["name"].split(";")[0], base["name"].split(";")[0]),
        ("root_seed", cur["root_seed"], base["root_seed"]),
        ("procs", cur["machine"]["procs"], base["machine"]["procs"]),
    ):
        if c != b:
            problems.append(f"{field} {c!r} vs baseline {b!r}")
    for field in ("policies", "mixes"):
        extra = set(cur[field]) - set(base[field])
        if extra:
            problems.append(f"{field} {sorted(extra)} not in baseline {base[field]}")
    if problems:
        return "spec mismatch (--subset): " + "; ".join(problems)
    return None


def ratio_map(doc):
    return {
        (r["mix"], r["policy"], r["job"]): r["ratio"]
        for r in doc.get("relative_response", [])
    }


def response_map(doc):
    out = {}
    for exp in doc["experiments"]:
        for job in exp["jobs"]:
            out[(exp["mix"], exp["policy"], job["index"])] = job["mean_response_s"]
    return out


def microbench_rates(path):
    """Max items_per_second per benchmark family from Google Benchmark JSON."""
    with open(path) as f:
        doc = json.load(f)
    rates = {}
    for bench in doc.get("benchmarks", []):
        # Repetition rows are "Name/repeats:5" (aggregates carry run_type
        # "aggregate"); fold everything onto the family name.
        if bench.get("run_type") == "aggregate":
            continue
        rate = bench.get("items_per_second")
        if rate is None:
            continue
        family = bench["name"].split("/")[0]
        rates[family] = max(rates.get(family, 0.0), rate)
    return rates


def open_spec_key(doc):
    spec = doc["spec"]
    return (
        spec["name"].split(";")[0],
        spec["root_seed"],
        tuple(spec["policies"]),
        tuple(spec["arrivals"]),
        tuple(round(r * 1000) for r in spec["rhos"]),
        spec["replications"],
        spec["jobs_per_cell"],
        spec["machine"]["procs"],
    )


def open_cell_map(doc):
    return {
        (c["arrivals"], round(c["rho"] * 1000), c["policy"], c["rep"]): c
        for c in doc["cells"]
    }


def compare_open(current, baseline, args):
    """Gate an open-sweep (schema 2) run against its baseline."""
    failures = []
    if open_spec_key(current) != open_spec_key(baseline):
        failures.append(
            f"spec mismatch: current {open_spec_key(current)} "
            f"vs baseline {open_spec_key(baseline)}")

    gated = ("p50_sojourn_s", "p95_sojourn_s", "p99_sojourn_s", "reject_rate")
    cur_cells, base_cells = open_cell_map(current), open_cell_map(baseline)
    for key in sorted(base_cells):
        if key not in cur_cells:
            failures.append(f"cell missing from current run: {key}")
            continue
        base, cur = base_cells[key], cur_cells[key]
        marks = []
        for field in gated:
            b, c = base[field], cur[field]
            drift = abs(c - b) / abs(b) if b else abs(c)
            if drift > args.tolerance:
                marks.append(f"{field} {b:.4f} -> {c:.4f}")
        if not cur["littles_law"]["ok"]:
            marks.append(
                f"littles_law rel_err {cur['littles_law']['rel_err']:.4f}")
        arrivals, rho_pm, policy, rep = key
        line = (f"cell {arrivals} rho={rho_pm / 1000:.3f} {policy:<8} rep={rep}: "
                f"p95 {base['p95_sojourn_s']:.3f}s -> {cur['p95_sojourn_s']:.3f}s")
        if marks:
            print(f"{line}  <-- {'; '.join(marks)}")
            failures.extend(f"cell {key}: {m}" for m in marks)
        else:
            print(line)

    if failures:
        print(f"\nFAIL: {len(failures)} open-sweep regression(s) vs "
              f"{args.baseline}:", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(base_cells)} open cells within {args.tolerance:.0%} of "
          "baseline; Little's law holds in every cell")
    return 0


def compare_microbench(args):
    current = microbench_rates(args.current)
    with open(args.baseline) as f:
        floors = json.load(f).get(args.floors_key, {})
    if not floors:
        sys.exit(
            f"{args.baseline}: no top-level {args.floors_key!r} object to gate on")

    failures = []
    for name in sorted(floors):
        floor = floors[name]
        if name not in current:
            failures.append(f"benchmark missing from current run: {name}")
            continue
        rate = current[name]
        drop = (floor - rate) / floor
        mark = "" if drop <= args.tolerance else "  <-- REGRESSION"
        print(f"{name}: baseline {floor:,.0f} items/s, current {rate:,.0f} "
              f"({-drop:+.1%}){mark}")
        if mark:
            failures.append(
                f"{name}: {rate:,.0f} items/s is {drop:.1%} below the "
                f"{floor:,.0f} floor (tolerance {args.tolerance:.0%})")

    if failures:
        print(f"\nFAIL: {len(failures)} microbench regression(s):", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print(f"\nOK: {len(floors)} microbench rate(s) within {args.tolerance:.0%} "
          "of the recorded floor")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current")
    parser.add_argument("baseline")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="max allowed relative drift (default 0.10)")
    parser.add_argument("--max-ratio", type=float, default=1.10,
                        help="sanity bound on policy-vs-equi response ratios")
    parser.add_argument("--subset", action="store_true",
                        help="CURRENT ran a slice of BASELINE's grid: allow "
                             "policies/mixes to be subsets and gate only the "
                             "keys CURRENT produced (closed sweeps only)")
    parser.add_argument("--microbench", action="store_true",
                        help="treat CURRENT as Google Benchmark JSON and gate "
                             "items/sec against BASELINE's floors")
    parser.add_argument("--floors-key", default="microbench",
                        help="BASELINE object holding the --microbench floors "
                             "(default 'microbench'; bench_opensys_load uses "
                             "'microbench_opensys')")
    args = parser.parse_args()

    if args.microbench:
        return compare_microbench(args)

    current = load(args.current)
    baseline = load(args.baseline)
    if is_open(current) != is_open(baseline):
        sys.exit("mode mismatch: one file is an open sweep (schema 2), the "
                 "other a closed sweep (schema 1)")
    if is_open(current):
        if args.subset:
            sys.exit("--subset is only supported for closed sweeps")
        return compare_open(current, baseline, args)

    failures = []
    if args.subset:
        mismatch = subset_spec_failure(current, baseline)
        if mismatch:
            failures.append(mismatch)
    elif spec_key(current) != spec_key(baseline):
        failures.append(
            f"spec mismatch: current {spec_key(current)} vs baseline {spec_key(baseline)}")

    cur_ratios, base_ratios = ratio_map(current), ratio_map(baseline)
    # --subset gates the keys CURRENT produced; full mode demands every
    # baseline key shows up in the current run.
    for key in sorted(cur_ratios if args.subset else base_ratios):
        if key not in cur_ratios:
            failures.append(f"ratio missing from current run: {key}")
            continue
        if key not in base_ratios:
            failures.append(f"ratio not in baseline: {key}")
            continue
        base, cur = base_ratios[key], cur_ratios[key]
        drift = abs(cur - base) / abs(base) if base else abs(cur)
        mark = "" if drift <= args.tolerance else "  <-- DRIFT"
        if mark:
            failures.append(
                f"ratio {key}: {base:.4f} -> {cur:.4f} ({drift:+.1%} drift)")
        print(f"ratio mix={key[0]} policy={key[1]:<8} job={key[2]}: "
              f"baseline {base:.4f} current {cur:.4f}{mark}")
        if cur > args.max_ratio:
            failures.append(
                f"ratio {key}: {cur:.4f} exceeds sanity bound {args.max_ratio}")

    cur_resp, base_resp = response_map(current), response_map(baseline)
    for key in sorted(cur_resp if args.subset else base_resp):
        if key not in cur_resp:
            failures.append(f"experiment missing from current run: {key}")
            continue
        if key not in base_resp:
            failures.append(f"experiment not in baseline: {key}")
            continue
        base, cur = base_resp[key], cur_resp[key]
        drift = abs(cur - base) / base
        if drift > args.tolerance:
            failures.append(
                f"mean_response_s {key}: {base:.3f}s -> {cur:.3f}s ({drift:+.1%} drift)")

    if failures:
        print(f"\nFAIL: {len(failures)} regression(s) vs {args.baseline}:",
              file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    gated_ratios = len(cur_ratios if args.subset else base_ratios)
    gated_resp = len(cur_resp if args.subset else base_resp)
    scope = " (subset)" if args.subset else ""
    print(f"\nOK: {gated_ratios} ratios and {gated_resp} response times "
          f"within {args.tolerance:.0%} of baseline{scope}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
