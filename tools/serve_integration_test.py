#!/usr/bin/env python3
"""Integration tests for the affsched_served sweep daemon.

Three scenarios, each driving the real daemon binary through the real
reference client (tools/affsched_client.py), so the wire protocol, the
content-addressed cache, and the crash/shard recovery paths are all
exercised end to end:

  cache-twice   Submit the same spec twice against a fresh cache: the second
                run must be >= 95% cache hits and its saved document byte-
                identical to the first (and to `simctl --sweep` when
                --simctl is given).

  kill-resume   Run the sweep once uninterrupted for a golden document. Then
                start a throttled daemon on a fresh cache, SIGKILL it after
                some cells have checkpointed, restart on the same cache, and
                resubmit: the completed cells must carry over as hits, only
                the missing ones re-simulate, and the final document must be
                byte-identical to the golden.

  shard         One coordinator (--no-local-execution) plus two --worker
                processes sharing a spool and cache: every cell must be
                resolved remotely and the document must still be golden.

Usage:
  tools/serve_integration_test.py --served BIN --mode cache-twice \
      [--simctl BIN] [--client tools/affsched_client.py] [--spec SPEC]
"""

import argparse
import json
import os
import pathlib
import shutil
import signal
import subprocess
import sys
import tempfile
import time

DEFAULT_SPEC = "smoke;reps=2"


class Harness:
    def __init__(self, args, workdir):
        self.args = args
        self.workdir = pathlib.Path(workdir)
        self.procs = []

    def path(self, name):
        return str(self.workdir / name)

    def start_daemon(self, *extra, socket_name="daemon.sock", cache="cache"):
        cmd = [self.args.served, "--socket", self.path(socket_name),
               "--cache-dir", self.path(cache), "--jobs", "2"] + list(extra)
        proc = subprocess.Popen(cmd, stderr=subprocess.PIPE)
        self.procs.append(proc)
        self.wait_for_socket(self.path(socket_name), proc)
        return proc

    def start_worker(self, *extra, cache="cache", spool="spool"):
        cmd = [self.args.served, "--worker", "--spool", self.path(spool),
               "--cache-dir", self.path(cache), "--worker-idle-ms", "10000"] + list(extra)
        proc = subprocess.Popen(cmd, stderr=subprocess.PIPE)
        self.procs.append(proc)
        return proc

    def wait_for_socket(self, path, proc, timeout=30.0):
        deadline = time.time() + timeout
        while time.time() < deadline:
            if os.path.exists(path):
                return
            if proc.poll() is not None:
                fail("daemon exited before listening: %s" % proc.stderr.read().decode())
            time.sleep(0.05)
        fail("daemon socket %s never appeared" % path)

    def client(self, socket_name, *argv, check=True):
        cmd = [sys.executable, self.args.client, "--socket", self.path(socket_name)] + list(argv)
        result = subprocess.run(cmd, capture_output=True, text=True)
        if check and result.returncode != 0:
            fail("client %s failed:\n%s\n%s" % (argv, result.stdout, result.stderr))
        return result

    def submit(self, socket_name, out_name, spec=None):
        """Submits and returns the summary dict {cells, hits, executed, remote}."""
        result = self.client(socket_name, "submit", spec or self.args.spec,
                             "--quiet", "--out", self.path(out_name))
        return json.loads(result.stdout.strip().splitlines()[-1])

    def shutdown(self, socket_name):
        self.client(socket_name, "shutdown")

    def cleanup(self):
        for proc in self.procs:
            if proc.poll() is None:
                proc.kill()
            proc.wait()


def fail(message):
    print("FAIL: %s" % message, file=sys.stderr)
    sys.exit(1)


def read_bytes(path):
    with open(path, "rb") as f:
        return f.read()


def cell_count(cache_dir):
    if not os.path.isdir(cache_dir):
        return 0
    return sum(1 for name in os.listdir(cache_dir) if name.endswith(".cell"))


def batch_golden(harness, out_name):
    """Runs `simctl --sweep` for the same spec; returns the document bytes."""
    out = harness.path(out_name)
    subprocess.run([harness.args.simctl, "--sweep=" + harness.args.spec,
                    "--jobs=2", "--out=" + out],
                   check=True, capture_output=True)
    return read_bytes(out)


def mode_cache_twice(harness):
    harness.start_daemon()
    first = harness.submit("daemon.sock", "r1.json")
    if first["hits"] != 0:
        fail("fresh cache reported hits: %s" % first)
    second = harness.submit("daemon.sock", "r2.json")
    if second["cells"] == 0 or second["hits"] < 0.95 * second["cells"]:
        fail("resubmission not served from cache: %s" % second)
    stats = json.loads(harness.client("daemon.sock", "stats").stdout)
    harness.shutdown("daemon.sock")
    r1, r2 = read_bytes(harness.path("r1.json")), read_bytes(harness.path("r2.json"))
    if r1 != r2:
        fail("resubmission document differs from first run")
    if harness.args.simctl:
        if r1 != batch_golden(harness, "batch.json"):
            fail("served document differs from simctl --sweep")
    print("cache-twice: %d/%d cells from cache, documents byte-identical"
          % (second["hits"], second["cells"]))
    print(json.dumps(stats["cache"]))


def mode_kill_resume(harness):
    # Golden, uninterrupted run on its own cache.
    harness.start_daemon(socket_name="golden.sock", cache="cache-golden")
    golden_summary = harness.submit("golden.sock", "golden.json")
    harness.shutdown("golden.sock")
    golden = read_bytes(harness.path("golden.json"))
    total = golden_summary["cells"]

    # Throttled run on a fresh cache, killed after some cells checkpoint.
    daemon = harness.start_daemon("--cell-delay-ms", "200",
                                  socket_name="victim.sock", cache="cache")
    victim = subprocess.Popen(
        [sys.executable, harness.args.client, "--socket", harness.path("victim.sock"),
         "submit", harness.args.spec, "--quiet"],
        stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
    harness.procs.append(victim)
    deadline = time.time() + 60
    while cell_count(harness.path("cache")) < 3:
        if time.time() > deadline:
            fail("no cells checkpointed before the kill window")
        if daemon.poll() is not None:
            fail("daemon exited before it could be killed")
        time.sleep(0.02)
    daemon.send_signal(signal.SIGKILL)
    daemon.wait()
    victim.wait()
    survivors = cell_count(harness.path("cache"))
    if survivors == 0 or survivors >= total:
        fail("kill window missed: %d/%d cells survived" % (survivors, total))

    # Resume on the surviving cache: only the missing cells may re-simulate.
    harness.start_daemon(socket_name="resume.sock", cache="cache")
    resumed = harness.submit("resume.sock", "resumed.json")
    harness.shutdown("resume.sock")
    if resumed["hits"] < survivors:
        fail("resume re-simulated checkpointed cells: %d survivors, summary %s"
             % (survivors, resumed))
    if resumed["executed"] != total - resumed["hits"]:
        fail("resume cell accounting off: %s (total %d)" % (resumed, total))
    if read_bytes(harness.path("resumed.json")) != golden:
        fail("resumed document differs from uninterrupted golden")
    print("kill-resume: %d/%d cells survived the kill, %d re-simulated, "
          "document matches golden" % (survivors, total, resumed["executed"]))


def mode_shard(harness):
    workers = [harness.start_worker(), harness.start_worker()]
    harness.start_daemon("--spool", harness.path("spool"), "--no-local-execution")
    summary = harness.submit("daemon.sock", "sharded.json")
    if summary["remote"] != summary["cells"] or summary["executed"] != 0:
        fail("coordinator simulated cells itself: %s" % summary)
    second = harness.submit("daemon.sock", "sharded2.json")
    if second["hits"] != second["cells"]:
        fail("sharded results not cached: %s" % second)
    harness.shutdown("daemon.sock")
    if read_bytes(harness.path("sharded.json")) != read_bytes(harness.path("sharded2.json")):
        fail("sharded document not stable across submissions")
    if harness.args.simctl:
        if read_bytes(harness.path("sharded.json")) != batch_golden(harness, "batch.json"):
            fail("sharded document differs from simctl --sweep")
    for worker in workers:
        if worker.wait(timeout=60) != 0:
            fail("worker exited nonzero: %s" % worker.stderr.read().decode())
    print("shard: %d/%d cells executed by workers, document golden"
          % (summary["remote"], summary["cells"]))


MODES = {
    "cache-twice": mode_cache_twice,
    "kill-resume": mode_kill_resume,
    "shard": mode_shard,
}


def main():
    parser = argparse.ArgumentParser(description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("--served", required=True, help="affsched_served binary")
    parser.add_argument("--simctl", help="simctl binary (enables batch golden comparison)")
    parser.add_argument("--client",
                        default=str(pathlib.Path(__file__).parent / "affsched_client.py"),
                        help="reference client script")
    parser.add_argument("--mode", required=True, choices=sorted(MODES))
    parser.add_argument("--spec", default=DEFAULT_SPEC, help="sweep spec to submit")
    args = parser.parse_args()

    workdir = tempfile.mkdtemp(prefix="affserve-%s-" % args.mode)
    harness = Harness(args, workdir)
    try:
        MODES[args.mode](harness)
        print("PASS: %s" % args.mode)
        return 0
    finally:
        harness.cleanup()
        shutil.rmtree(workdir, ignore_errors=True)


if __name__ == "__main__":
    sys.exit(main())
