// Quickstart: simulate two parallel jobs multiprogrammed on a Sequent
// Symmetry-like machine under two allocation policies and compare the terms
// of the paper's response-time model.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/measure/report.h"
#include "src/sched/factory.h"

using namespace affsched;

int main() {
  // The machine: 16 processors, 64 KB 2-way caches, 0.75 us per block fill,
  // 750 us reallocation path length (the paper's Symmetry Model B).
  MachineConfig machine;
  machine.num_processors = 16;

  std::printf("Simulating 1 MATRIX + 1 GRAVITY on %zu processors...\n\n",
              machine.num_processors);

  const std::string table =
      ComparePolicies(machine,
                      {PolicyKind::kEquipartition, PolicyKind::kDynamic, PolicyKind::kDynAff,
                       PolicyKind::kDynAffDelay},
                      {MakeMatrixProfile(), MakeGravityProfile()}, /*seed=*/42);
  std::printf("%s\n", table.c_str());
  std::printf(
      "Expected shape (paper, Sections 5-6): the dynamic policies beat\n"
      "Equipartition on response time; the affinity variants raise %%affinity\n"
      "dramatically but change response time only marginally on this-era\n"
      "hardware.\n");
  return 0;
}
