// affsched_served: the resident sweep daemon (sweep-as-a-service).
//
// Two roles in one binary:
//
//   Coordinator (default): listens on a Unix-domain socket for line-delimited
//   JSON requests (see src/serve/wire.h), plans each submitted sweep spec
//   into cells, answers from the content-addressed result cache, simulates
//   only the misses, and streams per-cell events plus the final document —
//   byte-identical to `simctl --sweep` — back to the client. Completed cells
//   checkpoint to the cache as they finish, so killing the daemon mid-sweep
//   loses only in-flight cells; the next submission of the same spec resumes
//   from the survivors.
//
//   Worker (--worker): no socket. Claims cell tasks from a shared spool
//   directory (atomic rename, exactly one winner per cell), simulates them,
//   and publishes results into the shared cache for the coordinator to fold.
//
//     affsched_served --socket /tmp/aff.sock --cache-dir /tmp/aff-cache &
//     affsched_served --worker --spool /tmp/aff-spool --cache-dir /tmp/aff-cache &
//     python3 tools/affsched_client.py --socket /tmp/aff.sock submit "smoke" --out r.json

#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include <sys/socket.h>
#include <unistd.h>

#include "src/runner/heartbeat.h"
#include "src/runner/sweep.h"
#include "src/serve/service.h"
#include "src/serve/spool.h"
#include "src/serve/wire.h"
#include "src/telemetry/manifest.h"

namespace {

using namespace affsched;

struct DaemonConfig {
  std::string socket_path;
  std::string cache_dir;
  uint64_t max_cache_bytes = 0;
  size_t jobs = 0;
  std::string spool_dir;
  bool worker = false;
  double worker_idle_s = 0.0;     // worker: exit after this long idle (0 = run forever)
  double cell_delay_s = 0.0;      // fault injection: sleep before each simulation
  long max_requests = -1;         // coordinator: exit after N requests (tests); -1 = unlimited
  bool shard_local_execution = true;
  std::string heartbeat_path;     // JSONL heartbeat stream ("-" = stderr)
  std::string git_rev_override;   // tests only: pin the cache-key revision
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: affsched_served --socket PATH --cache-dir DIR [options]\n"
               "       affsched_served --worker --spool DIR --cache-dir DIR [options]\n"
               "\n"
               "coordinator options:\n"
               "  --socket PATH          Unix socket to listen on (required)\n"
               "  --spool DIR            enable sharding via this spool directory\n"
               "  --no-local-execution   coordinator never simulates spooled cells itself\n"
               "                         (workers must; timeout fallback still applies)\n"
               "  --max-requests N       exit after N requests (integration tests)\n"
               "worker options:\n"
               "  --worker               run the spool worker loop instead of serving\n"
               "  --worker-idle-ms N     exit after N ms with no claimable work\n"
               "common options:\n"
               "  --cache-dir DIR        content-addressed result cache (required)\n"
               "  --max-cache-bytes N    evict LRU entries above this budget (0 = unbounded)\n"
               "  --jobs N               simulation threads (0 = hardware concurrency)\n"
               "  --cell-delay-ms N      sleep before each simulated cell (fault injection)\n"
               "  --heartbeat PATH       append JSONL service heartbeat lines (- = stderr)\n"
               "  --git-rev REV          override the cache-key git revision (tests)\n");
}

bool ParseArgs(int argc, char** argv, DaemonConfig* config, std::string* error) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    // Accept both --flag value and --flag=value.
    std::string inline_value;
    bool has_inline_value = false;
    const size_t eq = arg.find('=');
    if (arg.size() > 2 && arg[0] == '-' && eq != std::string::npos) {
      inline_value = arg.substr(eq + 1);
      arg = arg.substr(0, eq);
      has_inline_value = true;
    }
    auto next = [&](const char* flag) -> const char* {
      if (has_inline_value) {
        return inline_value.c_str();
      }
      if (i + 1 >= argc) {
        *error = std::string(flag) + " needs a value";
        return nullptr;
      }
      return argv[++i];
    };
    if (arg == "--socket") {
      const char* v = next("--socket");
      if (v == nullptr) return false;
      config->socket_path = v;
    } else if (arg == "--cache-dir") {
      const char* v = next("--cache-dir");
      if (v == nullptr) return false;
      config->cache_dir = v;
    } else if (arg == "--max-cache-bytes") {
      const char* v = next("--max-cache-bytes");
      if (v == nullptr) return false;
      config->max_cache_bytes = std::strtoull(v, nullptr, 10);
    } else if (arg == "--jobs") {
      const char* v = next("--jobs");
      if (v == nullptr) return false;
      config->jobs = static_cast<size_t>(std::strtoul(v, nullptr, 10));
    } else if (arg == "--spool") {
      const char* v = next("--spool");
      if (v == nullptr) return false;
      config->spool_dir = v;
    } else if (arg == "--worker") {
      config->worker = true;
    } else if (arg == "--worker-idle-ms") {
      const char* v = next("--worker-idle-ms");
      if (v == nullptr) return false;
      config->worker_idle_s = std::strtod(v, nullptr) / 1000.0;
    } else if (arg == "--cell-delay-ms") {
      const char* v = next("--cell-delay-ms");
      if (v == nullptr) return false;
      config->cell_delay_s = std::strtod(v, nullptr) / 1000.0;
    } else if (arg == "--max-requests") {
      const char* v = next("--max-requests");
      if (v == nullptr) return false;
      config->max_requests = std::strtol(v, nullptr, 10);
    } else if (arg == "--no-local-execution") {
      config->shard_local_execution = false;
    } else if (arg == "--heartbeat") {
      const char* v = next("--heartbeat");
      if (v == nullptr) return false;
      config->heartbeat_path = v;
    } else if (arg == "--git-rev") {
      const char* v = next("--git-rev");
      if (v == nullptr) return false;
      config->git_rev_override = v;
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      std::exit(0);
    } else {
      *error = "unknown flag: " + arg;
      return false;
    }
  }
  if (config->cache_dir.empty()) {
    *error = "--cache-dir is required";
    return false;
  }
  if (config->worker) {
    if (config->spool_dir.empty()) {
      *error = "--worker needs --spool";
      return false;
    }
  } else if (config->socket_path.empty()) {
    *error = "--socket is required (or --worker)";
    return false;
  }
  return true;
}

int RunWorker(const DaemonConfig& config) {
  ResultCacheOptions cache_options;
  cache_options.dir = config.cache_dir;
  cache_options.max_bytes = config.max_cache_bytes;
  ResultCache cache(cache_options);
  Spool spool(config.spool_dir);
  if (!cache.ok()) {
    std::fprintf(stderr, "affsched_served: %s\n", cache.error().c_str());
    return 1;
  }
  if (!spool.ok()) {
    std::fprintf(stderr, "affsched_served: %s\n", spool.error().c_str());
    return 1;
  }
  SpoolWorkerOptions worker_options;
  worker_options.idle_timeout_s = config.worker_idle_s;
  worker_options.cell_delay_s = config.cell_delay_s;
  const size_t executed = RunSpoolWorker(&spool, &cache, worker_options);
  std::fprintf(stderr, "affsched_served: worker done, %zu cells executed\n", executed);
  return 0;
}

// One heartbeat "cache" line: the service stats snapshot, flattened so the
// stream stays one-record-per-line greppable.
void EmitServiceHeartbeat(HeartbeatWriter* heartbeat, SweepService* service) {
  if (heartbeat == nullptr || !heartbeat->ok()) {
    return;
  }
  const ResultCacheStats cache = service->cache()->stats();
  const ServiceCounters& counters = service->counters();
  std::string members =
      "\"hits\":" + std::to_string(cache.hits) + ",\"misses\":" + std::to_string(cache.misses) +
      ",\"corrupt\":" + std::to_string(cache.corrupt) +
      ",\"stores\":" + std::to_string(cache.stores) +
      ",\"evictions\":" + std::to_string(cache.evictions) +
      ",\"entries\":" + std::to_string(service->cache()->EntryCount()) +
      ",\"bytes\":" + std::to_string(service->cache()->TotalBytes()) +
      ",\"submits\":" + std::to_string(counters.submits.load()) +
      ",\"cells_executed\":" + std::to_string(counters.cells_executed.load()) +
      ",\"cells_remote\":" + std::to_string(counters.cells_remote.load());
  heartbeat->Custom("cache", members);
}

// Serves one connection; returns false when the client asked for shutdown.
bool ServeConnection(int fd, SweepService* service, HeartbeatWriter* heartbeat) {
  LineChannel channel(fd);
  std::string line;
  while (channel.ReadLine(&line)) {
    if (line.empty()) {
      continue;
    }
    WireRequest request;
    std::string error;
    if (!ParseWireRequest(line, &request, &error)) {
      channel.WriteLine(WireErrorEvent(error));
      continue;
    }
    if (request.op == "ping") {
      channel.WriteLine("{\"event\":\"pong\",\"git_rev\":\"" +
                        std::string(RunManifest::GitSha()) + "\"}");
    } else if (request.op == "stats") {
      channel.WriteLine(service->StatsJson());
    } else if (request.op == "shutdown") {
      channel.WriteLine("{\"event\":\"bye\"}");
      return false;
    } else if (request.op == "submit") {
      SweepSpec spec;
      if (!ParseSweepSpec(request.spec, &spec, &error)) {
        channel.WriteLine(WireErrorEvent("bad spec: " + error));
        continue;
      }
      // Client hangups surface as WriteLine failures; the sweep still runs
      // to completion so its cells land in the cache for the retry.
      service->Submit(
          spec, [&](const std::string& event) { channel.WriteLine(event); }, nullptr, &error);
      EmitServiceHeartbeat(heartbeat, service);
    } else {
      channel.WriteLine(WireErrorEvent("unknown op: " + request.op));
    }
  }
  return true;
}

int RunCoordinator(const DaemonConfig& config) {
  SweepServiceOptions options;
  options.cache_dir = config.cache_dir;
  options.max_cache_bytes = config.max_cache_bytes;
  options.jobs = config.jobs;
  options.spool_dir = config.spool_dir;
  options.shard_local_execution = config.shard_local_execution;
  options.cell_delay_s = config.cell_delay_s;
  options.git_rev = config.git_rev_override;
  SweepService service(options);
  if (!service.ok()) {
    std::fprintf(stderr, "affsched_served: %s\n", service.error().c_str());
    return 1;
  }

  std::unique_ptr<HeartbeatWriter> heartbeat;
  if (!config.heartbeat_path.empty()) {
    heartbeat = std::make_unique<HeartbeatWriter>(config.heartbeat_path);
    service.set_round_stats(
        [&](const SweepRoundStats& stats) { heartbeat->OnRound(stats); });
  }

  std::string error;
  const int listen_fd = ListenUnix(config.socket_path, &error);
  if (listen_fd < 0) {
    std::fprintf(stderr, "affsched_served: %s\n", error.c_str());
    return 1;
  }
  std::fprintf(stderr, "affsched_served: listening on %s (cache %s, git %s)\n",
               config.socket_path.c_str(), config.cache_dir.c_str(), service.git_rev().c_str());

  long served = 0;
  bool keep_running = true;
  while (keep_running) {
    const int fd = ::accept(listen_fd, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) {
        continue;
      }
      std::fprintf(stderr, "affsched_served: accept: %s\n", std::strerror(errno));
      break;
    }
    keep_running = ServeConnection(fd, &service, heartbeat.get());
    ++served;
    if (config.max_requests >= 0 && served >= config.max_requests) {
      keep_running = false;
    }
  }
  EmitServiceHeartbeat(heartbeat.get(), &service);
  ::close(listen_fd);
  ::unlink(config.socket_path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // A client that disconnects mid-stream must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);
  DaemonConfig config;
  std::string error;
  if (!ParseArgs(argc, argv, &config, &error)) {
    std::fprintf(stderr, "affsched_served: %s\n", error.c_str());
    PrintUsage();
    return 2;
  }
  return config.worker ? RunWorker(config) : RunCoordinator(config);
}
