// simctl: a command-line driver for the simulator — pick a workload mix, a
// policy, a machine, and get the full per-job report (optionally a Gantt
// chart and a CSV event trace).
//
//   ./build/examples/simctl --mix=5 --policy=dyn-aff --procs=16 --gantt
//   ./build/examples/simctl --mix=2 --policy=equi --speed=16 --cache=16
//   ./build/examples/simctl --mix=5 --metrics --chrome-trace=trace.json
//   ./build/examples/simctl --sweep=smoke --jobs=8 --out=BENCH.json
//   ./build/examples/simctl --open --preset=opensys --jobs=8 --out=open.json
//   ./build/examples/simctl --open --rho=0.7,0.9 --arrivals=onoff --mpl-cap=8
//   ./build/examples/simctl --help

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/apps/apps.h"
#include "src/common/flags.h"
#include "src/common/table.h"
#include "src/engine/engine.h"
#include "src/measure/mixes.h"
#include "src/measure/report.h"
#include "src/opensys/open_sweep.h"
#include "src/rt/deadline_mix.h"
#include "src/runner/heartbeat.h"
#include "src/runner/runner.h"
#include "src/runner/sweep.h"
#include "src/runner/worker_pool.h"
#include "src/sched/metered.h"
#include "src/serve/jsonv.h"
#include "src/serve/wire.h"
#include "src/telemetry/chrome_trace.h"
#include "src/telemetry/json.h"
#include "src/telemetry/manifest.h"
#include "src/telemetry/metrics.h"
#include "src/telemetry/sampler.h"
#include "src/telemetry/job_spans.h"
#include "src/topology/topology.h"
#include "src/trace/decision_trace.h"
#include "src/trace/trace.h"

using namespace affsched;

namespace {

// Statistics over zero samples (a cell that completed no jobs) are NaN;
// render those as "n/a" instead of printing NaN into the table.
std::string FormatStat(double value, int digits) {
  return std::isfinite(value) ? FormatDouble(value, digits) : "n/a";
}

// Runs a whole experiment grid on a worker pool (--sweep mode). Consults
// --sweep, --jobs, --out, --progress and --heartbeat; the spec string
// carries everything else.
// Folds the --rt/--colors/--deadline-mix flags into a sweep/open spec string
// as trailing overrides (later keys win, so explicit spec keys and flags
// compose predictably).
std::string AppendRtOverrides(std::string spec_text, const FlagSet& flags) {
  if (flags.GetBool("rt")) {
    spec_text += ";rt=1;deadline-mix=" + flags.GetString("deadline-mix");
  }
  if (flags.GetInt("colors") > 0) {
    spec_text += ";colors=" + std::to_string(flags.GetInt("colors"));
  }
  return spec_text;
}

int RunSweepMode(const FlagSet& flags) {
  const std::string spec_text = AppendRtOverrides(flags.GetString("sweep"), flags);
  const size_t jobs = static_cast<size_t>(flags.GetInt("jobs"));
  const std::string out_path = flags.GetString("out");
  SweepSpec spec;
  std::string error;
  if (!ParseSweepSpec(spec_text, &spec, &error)) {
    std::printf("bad --sweep: %s\n", error.c_str());
    return 1;
  }

  std::unique_ptr<HeartbeatWriter> heartbeat;
  const std::string heartbeat_path = flags.GetString("heartbeat");
  if (!heartbeat_path.empty()) {
    heartbeat = std::make_unique<HeartbeatWriter>(heartbeat_path);
    if (!heartbeat->ok()) {
      std::printf("failed to open --heartbeat file %s\n", heartbeat_path.c_str());
      return 1;
    }
    heartbeat->Start(spec.name, spec.MinCells());
  }
  const bool progress = flags.GetBool("progress");

  SweepRunnerOptions options;
  options.jobs = jobs;
  if (heartbeat != nullptr || progress) {
    options.round_stats = [&](const SweepRoundStats& s) {
      if (heartbeat != nullptr) {
        heartbeat->OnRound(s);
      }
      if (progress) {
        const double events_per_s =
            s.round_wall_s > 0.0 ? static_cast<double>(s.round_events) / s.round_wall_s : 0.0;
        const size_t remaining = s.scheduled > s.completed ? s.scheduled - s.completed : 0;
        const double eta_s =
            s.completed > 0
                ? static_cast<double>(remaining) * s.total_wall_s / static_cast<double>(s.completed)
                : 0.0;
        std::fprintf(stderr,
                     "sweep: %zu/%zu cells | round %zu: %zu cells in %.2fs "
                     "(%.2fs/cell) | %.2fM events/s | eta %.1fs\n",
                     s.completed, s.scheduled, s.round, s.round_cells, s.round_wall_s,
                     s.round_cells > 0 ? s.round_wall_s / static_cast<double>(s.round_cells) : 0.0,
                     events_per_s / 1e6, eta_s);
      }
    };
  }
  if (!progress) {
    options.progress = [](size_t completed, size_t scheduled) {
      std::fprintf(stderr, "sweep: %zu/%zu cells\n", completed, scheduled);
    };
  }
  SweepRunner runner(options);
  const SweepResult result = runner.Run(spec);
  if (heartbeat != nullptr) {
    size_t completed = 0;
    for (const ExperimentResult& experiment : result.experiments) {
      completed += experiment.replicated.replications;
    }
    heartbeat->Finish(completed, result.wall_seconds);
  }

  std::printf("sweep '%s': %zu experiments on %zu worker(s), %.2fs wall\n\n", spec.name.c_str(),
              result.experiments.size(),
              jobs == 0 ? WorkerPool::DefaultThreadCount() : jobs, result.wall_seconds);
  TextTable table;
  table.SetHeader({"mix", "policy", "job", "reps", "mean RT (s)", "vs equi"});
  for (const ExperimentResult& experiment : result.experiments) {
    const ExperimentResult* equi =
        result.Find(PolicyKind::kEquipartition, experiment.mix.number);
    for (size_t j = 0; j < experiment.replicated.app.size(); ++j) {
      std::string ratio = "-";
      if (equi != nullptr && experiment.policy != PolicyKind::kEquipartition) {
        ratio = FormatDouble(
            experiment.replicated.MeanResponse(j) / equi->replicated.MeanResponse(j), 3);
      }
      table.AddRow({experiment.mix.Label(), PolicyKindCliName(experiment.policy),
                    experiment.replicated.app[j] + " (" + std::to_string(j) + ")",
                    std::to_string(experiment.replicated.replications),
                    FormatDouble(experiment.replicated.MeanResponse(j), 2), ratio});
    }
  }
  std::printf("%s\n", table.Render().c_str());

  if (!out_path.empty()) {
    if (!result.WriteJsonFile(out_path)) {
      std::printf("failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote sweep results to %s\n", out_path.c_str());
  }
  return 0;
}

// Client mode for the resident sweep daemon (--server): submits a sweep spec
// (or a stats/shutdown request) over the Unix socket and streams the wire
// events back. The saved --out file is byte-identical to what --sweep would
// write locally — the daemon only adds caching around the same simulation.
int RunServerClientMode(const FlagSet& flags) {
  const std::string socket_path = flags.GetString("server");
  std::string error;
  const int fd = ConnectUnix(socket_path, &error);
  if (fd < 0) {
    std::printf("simctl: %s\n", error.c_str());
    return 1;
  }
  LineChannel channel(fd);

  if (flags.GetBool("server-stats")) {
    if (!channel.WriteLine("{\"op\":\"stats\"}")) {
      std::printf("simctl: failed to send stats request\n");
      return 1;
    }
    std::string line;
    if (!channel.ReadLine(&line)) {
      std::printf("simctl: daemon closed the connection\n");
      return 1;
    }
    std::printf("%s\n", line.c_str());
    return 0;
  }

  const std::string spec_text = flags.GetString("submit");
  if (spec_text.empty()) {
    std::printf("--server needs --submit=<spec> (or --server-stats)\n");
    return 1;
  }
  std::string request = "{\"op\":\"submit\",\"spec\":\"" + JsonEscape(spec_text) + "\"";
  const size_t jobs = static_cast<size_t>(flags.GetInt("jobs"));
  if (jobs > 0) {
    request += ",\"jobs\":" + std::to_string(jobs);
  }
  request += "}";
  if (!channel.WriteLine(request)) {
    std::printf("simctl: failed to send submit request\n");
    return 1;
  }

  const std::string out_path = flags.GetString("out");
  std::string line;
  while (channel.ReadLine(&line)) {
    JsonValue event;
    if (!ParseJson(line, &event, &error) || !event.IsObject()) {
      std::fprintf(stderr, "simctl: unparseable event line: %s\n", line.c_str());
      continue;
    }
    const JsonValue* kind = event.Get("event");
    if (kind == nullptr || !kind->IsString()) {
      continue;
    }
    if (kind->string_value == "planned") {
      const JsonValue* cells_min = event.Get("cells_min");
      std::fprintf(stderr, "server sweep planned: >=%lld cells\n",
                   static_cast<long long>(cells_min != nullptr ? cells_min->AsInt64() : 0));
    } else if (kind->string_value == "cell") {
      const JsonValue* policy = event.Get("policy");
      const JsonValue* mix = event.Get("mix");
      const JsonValue* rep = event.Get("rep");
      const JsonValue* source = event.Get("source");
      std::fprintf(stderr, "cell %s mix=%lld rep=%lld [%s]\n",
                   policy != nullptr ? policy->string_value.c_str() : "?",
                   static_cast<long long>(mix != nullptr ? mix->AsInt64() : 0),
                   static_cast<long long>(rep != nullptr ? rep->AsInt64() : 0),
                   source != nullptr ? source->string_value.c_str() : "?");
    } else if (kind->string_value == "result") {
      const JsonValue* cells = event.Get("cells");
      const JsonValue* hits = event.Get("hits");
      const JsonValue* remote = event.Get("remote");
      std::printf("server sweep '%s': %lld cells (%lld from cache, %lld remote)\n",
                  spec_text.c_str(),
                  static_cast<long long>(cells != nullptr ? cells->AsInt64() : 0),
                  static_cast<long long>(hits != nullptr ? hits->AsInt64() : 0),
                  static_cast<long long>(remote != nullptr ? remote->AsInt64() : 0));
      const JsonValue* json = event.Get("json");
      if (!out_path.empty()) {
        if (json == nullptr || !json->IsString()) {
          std::printf("simctl: result event carried no json document\n");
          return 1;
        }
        FILE* out = std::fopen(out_path.c_str(), "w");
        if (out == nullptr ||
            std::fwrite(json->string_value.data(), 1, json->string_value.size(), out) !=
                json->string_value.size()) {
          if (out != nullptr) {
            std::fclose(out);
          }
          std::printf("failed to write %s\n", out_path.c_str());
          return 1;
        }
        std::fclose(out);
        std::printf("wrote sweep results to %s\n", out_path.c_str());
      }
    } else if (kind->string_value == "error") {
      const JsonValue* message = event.Get("message");
      std::printf("simctl: server error: %s\n",
                  message != nullptr ? message->string_value.c_str() : line.c_str());
      return 1;
    } else if (kind->string_value == "done") {
      return 0;
    }
  }
  std::printf("simctl: daemon closed the connection before \"done\"\n");
  return 1;
}

// Runs an open-system load sweep (--open mode): stochastic arrivals through
// admission control, latency percentiles per (policy, arrival process, rho)
// cell. The spec string comes from --preset with --rho/--arrivals/--mpl-cap/
// --max-queue folded in as overrides.
int RunOpenMode(const FlagSet& flags, int argc, char** argv) {
  std::string spec_text = flags.GetString("preset");
  if (!flags.GetString("rho").empty()) {
    spec_text += ";rhos=" + flags.GetString("rho");
  }
  if (!flags.GetString("arrivals").empty()) {
    spec_text += ";arrivals=" + flags.GetString("arrivals");
  }
  if (flags.GetInt("mpl-cap") > 0) {
    spec_text += ";mpl-cap=" + std::to_string(flags.GetInt("mpl-cap"));
  }
  if (flags.GetInt("max-queue") >= 0) {
    spec_text += ";max-queue=" + std::to_string(flags.GetInt("max-queue"));
  }
  spec_text = AppendRtOverrides(spec_text, flags);

  OpenSweepSpec spec;
  std::string error;
  if (!ParseOpenSweepSpec(spec_text, &spec, &error)) {
    std::printf("bad open sweep spec: %s\n", error.c_str());
    return 1;
  }

  const size_t jobs = static_cast<size_t>(flags.GetInt("jobs"));
  std::unique_ptr<HeartbeatWriter> heartbeat;
  const std::string heartbeat_path = flags.GetString("heartbeat");
  if (!heartbeat_path.empty()) {
    heartbeat = std::make_unique<HeartbeatWriter>(heartbeat_path);
    if (!heartbeat->ok()) {
      std::printf("failed to open --heartbeat file %s\n", heartbeat_path.c_str());
      return 1;
    }
    heartbeat->Start(spec.name, spec.Cells());
  }
  OpenSweepRunnerOptions options;
  options.jobs = jobs;
  options.progress = [&heartbeat](size_t completed, size_t total) {
    std::fprintf(stderr, "open sweep: %zu/%zu cells\n", completed, total);
    if (heartbeat != nullptr) {
      heartbeat->OnProgress(completed, total);
    }
  };
  const OpenSweepResult result = OpenSweepRunner(options).Run(spec);
  if (heartbeat != nullptr) {
    heartbeat->Finish(result.cells.size(), result.wall_seconds);
  }

  std::printf("open sweep '%s': %zu cells on %zu worker(s), %.2fs wall\n"
              "mean job demand %.2fs; admission %s\n\n",
              spec.name.c_str(), result.cells.size(),
              jobs == 0 ? WorkerPool::DefaultThreadCount() : jobs, result.wall_seconds,
              result.mean_demand_s,
              MakeAdmissionController(spec.mpl_cap, spec.max_queue)->Name().c_str());

  TextTable table;
  table.SetHeader({"arrivals", "rho", "policy", "p50 (s)", "p95 (s)", "p99 (s)", "rej %",
                   "queue", "aff %", "L=lamW"});
  for (const OpenCellResult& cell : result.cells) {
    const OpenSystemResult& r = cell.result;
    table.AddRow({ArrivalKindName(cell.arrivals), FormatDouble(cell.rho, 2),
                  PolicyKindCliName(cell.policy), FormatStat(r.p50_sojourn_s, 2),
                  FormatStat(r.p95_sojourn_s, 2), FormatStat(r.p99_sojourn_s, 2),
                  FormatStat(r.reject_rate * 100.0, 1), FormatStat(r.mean_queue_len, 2),
                  FormatStat(r.affinity_fraction * 100.0, 1),
                  r.littles.ok ? "ok" : "FAIL"});
  }
  std::printf("%s\n", table.Render().c_str());
  if (!result.AllLittlesLawOk()) {
    std::printf("WARNING: a cell failed the Little's-law self-check (accounting bug?)\n");
  }

  const std::string out_path = flags.GetString("out");
  if (!out_path.empty()) {
    if (!result.WriteJsonFile(out_path)) {
      std::printf("failed to write %s\n", out_path.c_str());
      return 1;
    }
    std::printf("wrote open sweep results to %s\n", out_path.c_str());
  }
  const std::string manifest_path = flags.GetString("manifest");
  if (!manifest_path.empty()) {
    RunManifest manifest;
    manifest.SetProvenance(argc, argv);
    manifest.SetString("tool", "simctl-open");
    manifest.SetString("spec", spec.name);
    manifest.SetUint("seed", spec.root_seed);
    manifest.SetNumber("cells", static_cast<double>(result.cells.size()));
    manifest.SetNumber("mean_demand_s", result.mean_demand_s);
    manifest.SetBool("littles_law_ok", result.AllLittlesLawOk());
    if (manifest.WriteFile(manifest_path)) {
      std::printf("wrote run manifest to %s\n", manifest_path.c_str());
    }
  }
  return result.AllLittlesLawOk() ? 0 : 1;
}

// Prints the sweep preset grids (--list-presets): what --sweep=<name> runs.
void ListPresets() {
  TextTable table;
  table.SetHeader({"preset", "seed", "policies", "mixes", "reps", "min cells"});
  for (const SweepSpec& spec :
       {Fig5Spec(), Table3Spec(), FutureSpec(), SmokeSpec(), MqSpec(), RtSpec()}) {
    std::string policies;
    for (PolicyKind kind : spec.policies) {
      policies += (policies.empty() ? "" : ",") + PolicyKindCliName(kind);
    }
    std::string mixes;
    for (const WorkloadMix& mix : spec.mixes) {
      mixes += (mixes.empty() ? "" : ",") + std::to_string(mix.number);
    }
    const std::string reps =
        spec.replication.min_replications == spec.replication.max_replications
            ? std::to_string(spec.replication.min_replications)
            : std::to_string(spec.replication.min_replications) + "-" +
                  std::to_string(spec.replication.max_replications);
    table.AddRow({spec.name, std::to_string(spec.root_seed), policies, mixes, reps,
                  std::to_string(spec.MinCells())});
  }
  std::printf("%s\nRun one with --sweep=<preset>; append ;key=value overrides "
              "(e.g. --sweep=\"fig5;reps=2;procs=8\").\n",
              table.Render().c_str());

  TextTable open_table;
  open_table.SetHeader({"open preset", "seed", "policies", "arrivals", "rhos", "cells"});
  for (const OpenSweepSpec& spec : {OpenSysSpec(), OpenSysSmokeSpec()}) {
    std::string policies;
    for (PolicyKind kind : spec.policies) {
      policies += (policies.empty() ? "" : ",") + PolicyKindCliName(kind);
    }
    std::string arrivals;
    for (ArrivalKind kind : spec.arrivals) {
      arrivals += (arrivals.empty() ? "" : ",") + ArrivalKindName(kind);
    }
    std::string rhos;
    for (double rho : spec.rhos) {
      rhos += (rhos.empty() ? "" : ",") + FormatDouble(rho, 2);
    }
    open_table.AddRow({spec.name, std::to_string(spec.root_seed), policies, arrivals, rhos,
                       std::to_string(spec.Cells())});
  }
  std::printf("\n%s\nRun one with --open --preset=<name>; --rho/--arrivals/--mpl-cap/"
              "--max-queue override the grid.\n",
              open_table.Render().c_str());
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags(
      "simctl: run one workload mix under one policy on a configurable machine.\n"
      "Policies: equi, dynamic, dyn-aff, dyn-aff-nopri, dyn-aff-delay,\n"
      "dyn-aff-cluster, dyn-aff-node, timeshare, timeshare-aff,\n"
      "mq-nosteal, mq-sibling, mq-cluster, mq-numa (per-processor queues;\n"
      "--steal is shorthand for the mq family),\n"
      "rt-static-affinity, rt-color-iso (static real-time assignment;\n"
      "pair with --rt and --colors).\n"
      "Mixes: 1-6 (Table 2 of the paper).");
  flags.AddInt("mix", 5, "workload mix number (1-6)");
  flags.AddString("policy", "dyn-aff", "allocation policy");
  flags.AddString("steal", "",
                  "multi-queue steal radius (nosteal, sibling, cluster, numa); "
                  "shorthand that overrides --policy with the matching mq-* kind");
  flags.AddDouble("balance-interval", 0.0,
                  "periodic load-balance tick in simulated milliseconds "
                  "(0 = the policy's own default)");
  flags.AddInt("procs", 16, "number of processors");
  flags.AddInt("seed", 42, "random seed");
  flags.AddDouble("speed", 1.0, "processor speed relative to the Symmetry");
  flags.AddDouble("cache", 1.0, "cache size relative to the Symmetry");
  flags.AddString("topology", "",
                  "machine topology: a preset (symmetry-flat, cmp-2x10, numa-4x8) "
                  "or preset,key=value overrides; see --list-topologies");
  flags.AddBool("list-topologies", false, "list the topology presets and exit");
  flags.AddBool("gantt", false, "render an ASCII Gantt chart");
  flags.AddBool("csv", false, "dump the event trace as CSV to stdout");
  flags.AddBool("metrics", false, "print end-of-run metric totals and reconcile them");
  flags.AddString("chrome-trace", "", "write a Chrome/Perfetto trace-event JSON file here");
  flags.AddString("decision-trace", "",
                  "write scheduling-decision provenance JSONL here (single-run "
                  "mode); with --chrome-trace, also renders a scheduler track "
                  "with flow arrows to the dispatches");
  flags.AddString("spans", "",
                  "write per-job lifecycle spans (arrival, queue wait, dispatches, "
                  "migrations, completion) as JSONL here; with --chrome-trace, "
                  "also annotates the job tracks");
  flags.AddString("samples", "", "write the sampled time series as CSV here");
  flags.AddDouble("sample-ms", 100.0, "sampling cadence in simulated milliseconds");
  flags.AddString("manifest", "", "write a run manifest (JSON) here");
  flags.AddBool("list-presets", false, "list the sweep preset grids and exit");
  flags.AddBool("engine-stats", false,
                "print event-core statistics (pool high-water mark, events/sec)");
  flags.AddString("sweep", "",
                  "run an experiment grid instead of one simulation: a preset "
                  "(fig5, table3, future, smoke, mq) or key=value spec; see README");
  flags.AddInt("jobs", 0, "sweep worker threads (0 = hardware concurrency)");
  flags.AddString("out", "", "write sweep results JSON here");
  flags.AddBool("progress", false,
                "rich live progress on stderr for --sweep: per-round cell "
                "counts, wall times, events/sec, ETA");
  flags.AddString("heartbeat", "",
                  "stream live-progress JSONL here during --sweep/--open "
                  "(\"-\" = stderr); see README Observability");
  flags.AddString("server", "",
                  "client mode: connect to an affsched_served Unix socket; "
                  "use with --submit or --server-stats");
  flags.AddString("submit", "",
                  "sweep spec to submit to --server (same syntax as --sweep); "
                  "streams cell events, saves the result document to --out");
  flags.AddBool("server-stats", false,
                "ask --server for its cache/service counters and print them");
  flags.AddBool("open", false,
                "run an open-system load sweep: stochastic arrivals, admission "
                "control, latency percentiles (see --preset)");
  flags.AddString("preset", "opensys",
                  "open sweep spec: a preset (opensys, opensys-smoke) or "
                  "key=value spec; used with --open");
  flags.AddString("rho", "", "offered loads for --open (comma-separated, e.g. 0.7,0.9)");
  flags.AddString("arrivals", "",
                  "arrival processes for --open (comma-separated: poisson, onoff)");
  flags.AddInt("mpl-cap", 0, "admission MPL cap for --open (0 = unbounded)");
  flags.AddInt("max-queue", -1,
               "admission queue bound for --open (-1 = unbounded; needs --mpl-cap)");
  flags.AddBool("rt", false,
                "real-time mode: stamp the --deadline-mix onto every job and "
                "report deadline misses/tardiness; composes with --sweep and "
                "--open (rt=1 spec override)");
  flags.AddInt("colors", 0,
               "page colors for the partitioned cache substrate (0 = footprint "
               "model); composes with --sweep and --open (colors=N override)");
  flags.AddString("deadline-mix", "soft",
                  "deadline mix for --rt: soft, hard, mixed, or tight "
                  "(tight is a guaranteed-miss fixture)");
  if (!flags.Parse(argc, argv)) {
    std::printf("%s\n", flags.help_requested() ? flags.Help().c_str() : flags.error().c_str());
    return flags.help_requested() ? 0 : 1;
  }

  if (flags.GetBool("list-presets")) {
    ListPresets();
    return 0;
  }

  if (flags.GetBool("list-topologies")) {
    std::printf("%s", RenderTopologyList().c_str());
    return 0;
  }

  if (!flags.GetString("server").empty()) {
    return RunServerClientMode(flags);
  }

  if (!flags.GetString("sweep").empty()) {
    return RunSweepMode(flags);
  }

  if (flags.GetBool("open")) {
    return RunOpenMode(flags, argc, argv);
  }

  const int mix_number = static_cast<int>(flags.GetInt("mix"));
  if (mix_number < 1 || mix_number > 6) {
    std::printf("--mix must be 1-6\n");
    return 1;
  }
  PolicyKind kind;
  if (!PolicyKindFromName(flags.GetString("policy"), &kind)) {
    std::printf("unknown --policy '%s'\n", flags.GetString("policy").c_str());
    return 1;
  }
  if (!flags.GetString("steal").empty() &&
      !PolicyKindFromStealName(flags.GetString("steal"), &kind)) {
    std::printf("unknown --steal '%s' (try nosteal, sibling, cluster, numa)\n",
                flags.GetString("steal").c_str());
    return 1;
  }
  if (flags.GetDouble("balance-interval") < 0.0) {
    std::printf("--balance-interval must be >= 0 ms\n");
    return 1;
  }
  if (flags.GetDouble("sample-ms") <= 0.0) {
    std::printf("--sample-ms must be > 0\n");
    return 1;
  }

  if (flags.GetInt("procs") < 1) {
    std::printf("--procs must be >= 1\n");
    return 1;
  }
  MachineConfig machine;
  machine.num_processors = static_cast<size_t>(flags.GetInt("procs"));
  machine.processor_speed = flags.GetDouble("speed");
  machine.cache_size_factor = flags.GetDouble("cache");
  const int colors = static_cast<int>(flags.GetInt("colors"));
  if (colors < 0 || colors > 64) {
    std::printf("--colors must be in 0..64 (0 = footprint model)\n");
    return 1;
  }
  if (colors > 0) {
    machine.num_colors = static_cast<size_t>(colors);
    machine.cache_model = CacheModelKind::kPartitioned;
  }
  if (!flags.GetString("topology").empty()) {
    std::string topology_error;
    if (!ParseTopologySpec(flags.GetString("topology"), &machine.topology, &topology_error)) {
      std::printf("bad --topology: %s\n", topology_error.c_str());
      return 1;
    }
  }
  const std::string machine_problem = machine.Validate();
  if (!machine_problem.empty()) {
    std::printf("bad machine config: %s\n", machine_problem.c_str());
    return 1;
  }

  const WorkloadMix mix = PaperMixes()[static_cast<size_t>(mix_number - 1)];
  std::printf("mix %s under %s on %zu processors (speed %.1fx, cache %.1fx, topology %s)\n\n",
              mix.Label().c_str(), PolicyKindName(kind).c_str(), machine.num_processors,
              machine.processor_speed, machine.cache_size_factor,
              machine.topology.name.c_str());

  const std::string chrome_trace_path = flags.GetString("chrome-trace");
  const std::string samples_path = flags.GetString("samples");
  const std::string manifest_path = flags.GetString("manifest");
  const bool want_metrics =
      flags.GetBool("metrics") || !manifest_path.empty();

  MetricsRegistry registry;
  std::unique_ptr<Policy> policy = MakePolicy(kind);
  if (want_metrics) {
    auto metered = std::make_unique<MeteredPolicy>(std::move(policy));
    metered->AttachMetrics(&registry);
    policy = std::move(metered);
  }

  RingTrace trace;
  Engine::Options engine_options;
  engine_options.balance_interval = Milliseconds(flags.GetDouble("balance-interval"));
  Engine engine(machine, std::move(policy), static_cast<uint64_t>(flags.GetInt("seed")),
                engine_options);
  if (flags.GetBool("gantt") || flags.GetBool("csv") || !chrome_trace_path.empty()) {
    engine.SetTraceSink(&trace);
  }
  const std::string decision_path = flags.GetString("decision-trace");
  const std::string spans_path = flags.GetString("spans");
  DecisionTrace decisions;
  JobSpanCollector spans;
  if (!decision_path.empty()) {
    engine.SetDecisionSink(&decisions);
  }
  if (!spans_path.empty()) {
    engine.SetSpanCollector(&spans);
  }
  if (want_metrics) {
    engine.SetMetrics(&registry);
  }
  Sampler sampler(Milliseconds(flags.GetDouble("sample-ms")));
  if (!samples_path.empty()) {
    engine.SetSampler(&sampler);
  }
  std::vector<AppProfile> mix_jobs = mix.Expand(DefaultProfiles());
  if (flags.GetBool("rt")) {
    std::string mix_error;
    if (!ApplyDeadlineMix(flags.GetString("deadline-mix"), machine.num_processors, &mix_jobs,
                          &mix_error)) {
      std::printf("bad --deadline-mix: %s\n", mix_error.c_str());
      return 1;
    }
  }
  for (const AppProfile& job : mix_jobs) {
    engine.SubmitJob(job);
  }
  const auto run_start = std::chrono::steady_clock::now();
  const SimTime end = engine.Run();
  const double run_wall_s = std::chrono::duration<double>(
                                std::chrono::steady_clock::now() - run_start)
                                .count();

  TextTable table;
  table.SetHeader(JobReportHeader());
  AppendJobReport(table, PolicyKindName(kind), engine);
  std::printf("%s\nmakespan: %s\n", table.Render().c_str(), FormatDuration(end).c_str());

  if (flags.GetBool("rt")) {
    uint64_t misses = 0;
    double tardiness_s = 0.0;
    double worst_reload_s = 0.0;
    for (JobId id = 0; id < engine.job_count(); ++id) {
      const JobStats& stats = engine.job_stats(id);
      misses += stats.deadline_misses;
      tardiness_s += stats.tardiness_s;
      worst_reload_s = std::max(worst_reload_s, stats.worst_reload_s);
    }
    std::printf("rt (%s mix): %llu/%zu deadline misses, total tardiness %.3fs, "
                "worst observed reload %.6fs\n",
                flags.GetString("deadline-mix").c_str(),
                static_cast<unsigned long long>(misses), engine.job_count(), tardiness_s,
                worst_reload_s);
  }

  if (flags.GetBool("gantt")) {
    std::printf("\n%s", trace.RenderGantt(machine.num_processors, 0, end).c_str());
  }
  if (flags.GetBool("csv")) {
    std::printf("\n%s", trace.ToCsv().c_str());
  }

  if (flags.GetBool("engine-stats")) {
    const EventQueue::Stats& stats = engine.event_queue_stats();
    std::printf("\nevent core: %llu scheduled, %llu run, %llu cancelled\n"
                "event pool high-water mark: %zu records\n"
                "throughput: %.0f events/sec (%.3fs wall)\n",
                static_cast<unsigned long long>(stats.scheduled),
                static_cast<unsigned long long>(stats.run),
                static_cast<unsigned long long>(stats.cancelled), stats.pool_high_water,
                run_wall_s > 0.0 ? static_cast<double>(stats.run) / run_wall_s : 0.0,
                run_wall_s);
  }

  if (flags.GetBool("metrics")) {
    std::printf("\n%s", registry.RenderText().c_str());
    const MetricsReconciliation rec = ReconcileEngineMetrics(engine, registry);
    std::printf("\nreconciliation vs JobStats: %s\n%s", rec.ok ? "OK" : "MISMATCH",
                rec.report.c_str());
  }

  std::vector<std::string> job_names;
  job_names.reserve(engine.job_count());
  for (JobId id = 0; id < engine.job_count(); ++id) {
    job_names.push_back(engine.job_name(id));
  }

  if (!decision_path.empty() &&
      Sampler::WriteFile(decision_path, decisions.ToJsonl())) {
    std::printf("\nwrote %zu decision records to %s\n", decisions.Records().size(),
                decision_path.c_str());
    if (decisions.dropped() > 0) {
      std::printf("warning: decision ring dropped %zu early records\n", decisions.dropped());
    }
  }
  if (!spans_path.empty() && Sampler::WriteFile(spans_path, spans.ToJsonl())) {
    std::printf("\nwrote %zu job lifecycle spans to %s\n", spans.jobs().size(),
                spans_path.c_str());
  }
  if (!chrome_trace_path.empty()) {
    ChromeTraceWriter writer;
    writer.AddEvents(trace.Events());
    std::vector<DecisionRecord> decision_records;
    if (!decision_path.empty()) {
      decision_records = decisions.Records();
      writer.AttachDecisions(&decision_records);
    }
    if (!spans_path.empty()) {
      writer.AttachLifecycles(&spans);
    }
    if (writer.WriteJsonFile(chrome_trace_path, machine.num_processors, job_names)) {
      std::printf("\nwrote %zu trace events to %s (load in chrome://tracing or Perfetto)\n",
                  writer.size(), chrome_trace_path.c_str());
      if (trace.dropped() > 0) {
        std::printf("warning: ring buffer dropped %zu early events\n", trace.dropped());
      }
    }
  }
  if (!samples_path.empty() &&
      Sampler::WriteFile(samples_path, sampler.ToCsv())) {
    std::printf("\nwrote %zu samples x %zu probes to %s\n", sampler.num_samples(),
                sampler.num_probes(), samples_path.c_str());
  }
  if (!manifest_path.empty()) {
    RunManifest manifest;
    manifest.SetProvenance(argc, argv);
    manifest.SetString("tool", "simctl");
    manifest.SetString("mix", mix.Label());
    manifest.SetString("policy", PolicyKindName(kind));
    manifest.SetNumber("procs", static_cast<double>(machine.num_processors));
    manifest.SetNumber("speed", machine.processor_speed);
    manifest.SetNumber("cache", machine.cache_size_factor);
    manifest.SetString("topology", machine.topology.ToSpecString());
    // As an exact decimal, not SetNumber: 64-bit seeds above 2^53 would be
    // silently rounded through double and fail to round-trip.
    manifest.SetUint("seed", static_cast<uint64_t>(flags.GetInt("seed")));
    manifest.SetNumber("makespan_s", ToSeconds(end));
    manifest.AddMetrics(registry);
    if (manifest.WriteFile(manifest_path)) {
      std::printf("\nwrote run manifest to %s\n", manifest_path.c_str());
    }
  }
  return 0;
}
