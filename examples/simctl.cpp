// simctl: a command-line driver for the simulator — pick a workload mix, a
// policy, a machine, and get the full per-job report (optionally a Gantt
// chart and a CSV event trace).
//
//   ./build/examples/simctl --mix=5 --policy=dyn-aff --procs=16 --gantt
//   ./build/examples/simctl --mix=2 --policy=equi --speed=16 --cache=16
//   ./build/examples/simctl --help

#include <cstdio>
#include <string>

#include "src/apps/apps.h"
#include "src/common/flags.h"
#include "src/engine/engine.h"
#include "src/measure/mixes.h"
#include "src/measure/report.h"
#include "src/trace/trace.h"

using namespace affsched;

namespace {

bool PolicyFromName(const std::string& name, PolicyKind* kind) {
  if (name == "equi") {
    *kind = PolicyKind::kEquipartition;
  } else if (name == "dynamic") {
    *kind = PolicyKind::kDynamic;
  } else if (name == "dyn-aff") {
    *kind = PolicyKind::kDynAff;
  } else if (name == "dyn-aff-nopri") {
    *kind = PolicyKind::kDynAffNoPri;
  } else if (name == "dyn-aff-delay") {
    *kind = PolicyKind::kDynAffDelay;
  } else if (name == "timeshare") {
    *kind = PolicyKind::kTimeShare;
  } else if (name == "timeshare-aff") {
    *kind = PolicyKind::kTimeShareAff;
  } else {
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  FlagSet flags(
      "simctl: run one workload mix under one policy on a configurable machine.\n"
      "Policies: equi, dynamic, dyn-aff, dyn-aff-nopri, dyn-aff-delay,\n"
      "timeshare, timeshare-aff. Mixes: 1-6 (Table 2 of the paper).");
  flags.AddInt("mix", 5, "workload mix number (1-6)");
  flags.AddString("policy", "dyn-aff", "allocation policy");
  flags.AddInt("procs", 16, "number of processors");
  flags.AddInt("seed", 42, "random seed");
  flags.AddDouble("speed", 1.0, "processor speed relative to the Symmetry");
  flags.AddDouble("cache", 1.0, "cache size relative to the Symmetry");
  flags.AddBool("gantt", false, "render an ASCII Gantt chart");
  flags.AddBool("csv", false, "dump the event trace as CSV to stdout");
  if (!flags.Parse(argc, argv)) {
    std::printf("%s\n", flags.help_requested() ? flags.Help().c_str() : flags.error().c_str());
    return flags.help_requested() ? 0 : 1;
  }

  const int mix_number = static_cast<int>(flags.GetInt("mix"));
  if (mix_number < 1 || mix_number > 6) {
    std::printf("--mix must be 1-6\n");
    return 1;
  }
  PolicyKind kind;
  if (!PolicyFromName(flags.GetString("policy"), &kind)) {
    std::printf("unknown --policy '%s'\n", flags.GetString("policy").c_str());
    return 1;
  }

  MachineConfig machine;
  machine.num_processors = static_cast<size_t>(flags.GetInt("procs"));
  machine.processor_speed = flags.GetDouble("speed");
  machine.cache_size_factor = flags.GetDouble("cache");

  const WorkloadMix mix = PaperMixes()[static_cast<size_t>(mix_number - 1)];
  std::printf("mix %s under %s on %zu processors (speed %.1fx, cache %.1fx)\n\n",
              mix.Label().c_str(), PolicyKindName(kind).c_str(), machine.num_processors,
              machine.processor_speed, machine.cache_size_factor);

  RingTrace trace;
  Engine engine(machine, MakePolicy(kind), static_cast<uint64_t>(flags.GetInt("seed")));
  if (flags.GetBool("gantt") || flags.GetBool("csv")) {
    engine.SetTraceSink(&trace);
  }
  for (const AppProfile& job : mix.Expand(DefaultProfiles())) {
    engine.SubmitJob(job);
  }
  const SimTime end = engine.Run();

  TextTable table;
  table.SetHeader(JobReportHeader());
  AppendJobReport(table, PolicyKindName(kind), engine);
  std::printf("%s\nmakespan: %s\n", table.Render().c_str(), FormatDuration(end).c_str());

  if (flags.GetBool("gantt")) {
    std::printf("\n%s", trace.RenderGantt(machine.num_processors, 0, end).c_str());
  }
  if (flags.GetBool("csv")) {
    std::printf("\n%s", trace.ToCsv().c_str());
  }
  return 0;
}
