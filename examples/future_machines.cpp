// Example: asking "when will affinity scheduling start to matter on MY
// machine?" — the Section 7 question — in two independent ways:
//
//   1. analytically, with the paper's extended response-time model (Fig. 7),
//   2. by *direct simulation*: the simulator's MachineConfig accepts
//      processor_speed and cache_size_factor, scaling computation linearly,
//      miss service by sqrt(speed), and cache capacity by the factor — the
//      same assumptions the model makes, but with all queueing/contention
//      dynamics simulated rather than modelled.
//
// The paper could only extrapolate analytically; reproducing both paths and
// comparing them is this library's value-add.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/future_machines

#include <cmath>
#include <cstdio>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/measure/experiment.h"
#include "src/model/future_sweep.h"

using namespace affsched;

namespace {

double MeanRelativeRt(const MachineConfig& machine, PolicyKind kind,
                      const std::vector<AppProfile>& jobs, uint64_t seed) {
  const RunResult equi = RunOnce(machine, PolicyKind::kEquipartition, jobs, seed);
  const RunResult run = RunOnce(machine, kind, jobs, seed);
  double acc = 0.0;
  for (size_t j = 0; j < jobs.size(); ++j) {
    acc += run.jobs[j].stats.ResponseSeconds() / equi.jobs[j].stats.ResponseSeconds();
  }
  return acc / static_cast<double>(jobs.size());
}

}  // namespace

int main() {
  const std::vector<AppProfile> apps = DefaultProfiles();
  const WorkloadMix mix{.number = 5, .mva = 0, .matrix = 1, .gravity = 1};
  const std::vector<AppProfile> jobs = mix.Expand(apps);

  std::printf("Workload #5 (1 MATRIX + 1 GRAVITY), Dynamic vs Equipartition,\n");
  std::printf("as the speed x cache product grows:\n\n");

  // Path 1: the analytic model.
  FutureSweepOptions options;
  options.products = {1, 16, 256, 4096};
  options.policies = {PolicyKind::kDynamic};
  options.replication.min_replications = 2;
  options.replication.max_replications = 2;
  const FutureSweepResult model = SweepFutureMachines(PaperMachineConfig(), mix, apps,
                                                      PaperPenaltyTable(), 42, options);

  // Path 2: direct simulation of the future machine.
  TextTable table;
  table.SetHeader({"speed x cache", "model (mean rel. RT)", "simulated (mean rel. RT)"});
  for (size_t i = 0; i < options.products.size(); ++i) {
    const double product = options.products[i];
    double model_mean = 0.0;
    size_t count = 0;
    for (const FutureCurve& curve : model.curves) {
      model_mean += curve.relative_rt[i];
      ++count;
    }
    model_mean /= static_cast<double>(count);

    MachineConfig future = PaperMachineConfig();
    future.processor_speed = std::sqrt(product);
    future.cache_size_factor = std::sqrt(product);
    const double simulated = MeanRelativeRt(future, PolicyKind::kDynamic, jobs, 42);

    table.AddRow({FormatDouble(product, 0), FormatDouble(model_mean, 3),
                  FormatDouble(simulated, 3)});
  }
  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Both paths should agree on the trend: oblivious Dynamic loses ground\n"
      "as machines get faster and caches larger, because each reallocation's\n"
      "cache penalty shrinks only as sqrt(speed) while computation shrinks\n"
      "linearly.\n");
  return 0;
}
