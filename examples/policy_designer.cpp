// Example: designing and evaluating a *custom* allocation policy against the
// paper's line-up.
//
// Scenario: you suspect a middle ground between Equipartition and Dynamic —
// a policy that repartitions equally like Equipartition, but also hands out
// willing-to-yield processors to jobs that request them (without ever
// preempting running work). This example implements that policy against the
// public Policy interface and races it on workload #5.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/policy_designer

#include <cstdio>
#include <memory>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/engine/engine.h"
#include "src/sched/equipartition.h"
#include "src/sched/factory.h"

using namespace affsched;

namespace {

// "EquiYield": Equipartition's repartition-on-arrival/departure, plus rule
// D.2 only — willing-to-yield processors may move to requesters, but no
// preemption of running tasks ever happens.
class EquiYieldPolicy : public Policy {
 public:
  std::string name() const override { return "Equi-Yield"; }

  PolicyDecision OnJobArrival(const SchedView& view, JobId job) override {
    return equi_.OnJobArrival(view, job);
  }

  PolicyDecision OnJobDeparture(const SchedView& view, JobId job) override {
    return equi_.OnJobDeparture(view, job);
  }

  PolicyDecision OnProcessorAvailable(const SchedView& view, size_t proc) override {
    PolicyDecision decision;
    // Hand the processor to the requester with the highest priority.
    JobId best = kInvalidJobId;
    double best_priority = 0.0;
    for (JobId j : view.ActiveJobs()) {
      if (j == view.ProcessorJob(proc) || view.PendingDemand(j) == 0) {
        continue;
      }
      if (best == kInvalidJobId || view.Priority(j) > best_priority) {
        best = j;
        best_priority = view.Priority(j);
      }
    }
    if (best != kInvalidJobId) {
      decision.assignments.push_back(Assignment{proc, best, kNoOwner});
    }
    return decision;
  }

  PolicyDecision OnRequest(const SchedView& view, JobId job) override {
    PolicyDecision decision;
    if (view.PendingDemand(job) == 0) {
      return decision;
    }
    for (size_t p = 0; p < view.NumProcessors(); ++p) {
      const JobId holder = view.ProcessorJob(p);
      const bool free_proc = holder == kInvalidJobId;
      const bool yielded = holder != kInvalidJobId && holder != job && view.WillingToYield(p);
      if ((free_proc || yielded) && !view.ReassignmentPending(p)) {
        decision.assignments.push_back(Assignment{p, job, kNoOwner});
        return decision;
      }
    }
    return decision;
  }

  bool UsesAffinity() const override { return true; }

 private:
  Equipartition equi_;
};

void Report(TextTable& table, const std::string& policy, Engine& engine) {
  for (JobId id = 0; id < engine.job_count(); ++id) {
    const JobStats& s = engine.job_stats(id);
    table.AddRow({policy, engine.job_name(id), FormatDouble(s.ResponseSeconds(), 1),
                  FormatDouble(s.waste_s, 1), std::to_string(s.reallocations),
                  FormatPercent(s.AffinityFraction())});
  }
}

}  // namespace

int main() {
  MachineConfig machine;
  machine.num_processors = 16;

  std::printf("Racing a custom policy on workload #5 (1 MATRIX + 1 GRAVITY)...\n\n");

  TextTable table;
  table.SetHeader({"policy", "job", "RT (s)", "waste (s)", "#realloc", "%affinity"});

  for (PolicyKind kind : {PolicyKind::kEquipartition, PolicyKind::kDynAff}) {
    Engine engine(machine, MakePolicy(kind), 42);
    engine.SubmitJob(MakeMatrixProfile());
    engine.SubmitJob(MakeGravityProfile());
    engine.Run();
    Report(table, PolicyKindName(kind), engine);
  }
  {
    Engine engine(machine, std::make_unique<EquiYieldPolicy>(), 42);
    engine.SubmitJob(MakeMatrixProfile());
    engine.SubmitJob(MakeGravityProfile());
    engine.Run();
    Report(table, "Equi-Yield", engine);
  }

  std::printf("%s\n", table.Render().c_str());
  std::printf(
      "Equi-Yield recovers much of Dynamic's utilisation win (waste shrinks\n"
      "versus Equipartition) without any preemption machinery — but jobs\n"
      "cannot claim processors back on demand, so bursty jobs still wait.\n"
      "This is the #reallocations/waste degree of freedom of Section 2 made\n"
      "concrete with ~60 lines of policy code.\n");
  return 0;
}
