// Example: *seeing* the difference between the allocation policies.
//
// Attaches a trace to the engine, runs a short two-job workload under
// Equipartition and Dyn-Aff, and renders ASCII Gantt charts of processor
// occupancy plus a summary of the recorded scheduling events. Equipartition's
// chart shows a static split with idle (held) processors at barriers;
// Dyn-Aff's shows processors flowing between the jobs.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/trace_gantt

#include <cstdio>
#include <map>

#include "src/apps/apps.h"
#include "src/engine/engine.h"
#include "src/sched/factory.h"
#include "src/trace/trace.h"

using namespace affsched;

int main() {
  MachineConfig machine;
  machine.num_processors = 8;

  // A short, phase-heavy pairing so the chart fits a screen: one GRAVITY-like
  // job (barriers -> parallelism collapses) and one MATRIX-like job (steady).
  GravityParams gravity;
  gravity.timesteps = 4;
  gravity.sequential_work = Milliseconds(60);
  gravity.phase_threads = {8, 4, 4, 2};
  gravity.phase_work = {Milliseconds(800), Milliseconds(240), Milliseconds(200),
                        Milliseconds(100)};
  gravity.phase_cv = {0.2, 0.1, 0.1, 0.45};

  MatrixParams matrix;
  matrix.threads = 48;
  matrix.thread_work = Milliseconds(150);

  for (PolicyKind kind : {PolicyKind::kEquipartition, PolicyKind::kDynAff}) {
    RingTrace trace;
    Engine engine(machine, MakePolicy(kind), 11);
    engine.SetTraceSink(&trace);
    const JobId grav = engine.SubmitJob(MakeGravityProfile(gravity));
    const JobId mat = engine.SubmitJob(MakeMatrixProfile(matrix));
    const SimTime end = engine.Run();

    std::printf("=== %s ===\n", PolicyKindName(kind).c_str());
    std::printf("job %u = GRAVITY (RT %.2f s), job %u = MATRIX (RT %.2f s)\n\n", grav,
                engine.job_stats(grav).ResponseSeconds(), mat,
                engine.job_stats(mat).ResponseSeconds());
    std::printf("%s\n", trace.RenderGantt(machine.num_processors, 0, end).c_str());

    // Event census.
    std::map<TraceEventKind, size_t> census;
    for (const TraceEvent& e : trace.Events()) {
      ++census[e.kind];
    }
    std::printf("events:");
    for (const auto& [kind_key, count] : census) {
      std::printf(" %s=%zu", TraceEventKindName(kind_key), count);
    }
    std::printf("  (recorded %llu, dropped %zu)\n\n",
                static_cast<unsigned long long>(trace.total_recorded()), trace.dropped());
  }

  std::printf(
      "Reading the charts: under Equipartition each job keeps its half of\n"
      "the machine (lowercase letters = processors held idle across\n"
      "GRAVITY's barriers); under Dyn-Aff those processors flow to MATRIX\n"
      "('*' marks the 750 us reallocation path) and return when GRAVITY's\n"
      "next phase opens.\n");
  return 0;
}
