// Example: measuring the cache-affinity penalties of a *custom* application
// with the Section 4 harness.
//
// Scenario: you have a new parallel application and want to know how much a
// processor reallocation costs it — exactly the question the paper's Table 1
// answers for MVA / MATRIX / GRAVITY. This example defines a synthetic
// "database scan" application (large working set, fast buildup, moderate
// steady misses), measures its P^A and P^NA across rescheduling intervals,
// and relates them to the 750 us switch path length.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/measure_your_app

#include <cstdio>
#include <memory>

#include "src/apps/apps.h"
#include "src/common/table.h"
#include "src/measure/section4.h"

using namespace affsched;

namespace {

// A custom application profile: a scan-heavy job with 24 threads.
AppProfile MakeScanProfile() {
  AppProfile profile;
  profile.name = "DBSCAN";
  profile.working_set = WorkingSetParams{
      .blocks = 3800.0,          // nearly fills the 4096-block cache
      .buildup_tau_s = 0.020,    // touches its data quickly
      .steady_miss_per_s = 40'000.0,  // streaming component misses steadily
  };
  profile.thread_overlap = 0.25;  // successive scan ranges share little
  profile.max_parallelism = 24;
  profile.build_graph = [](Rng& rng) {
    auto graph = std::make_unique<ThreadGraph>();
    for (int i = 0; i < 24; ++i) {
      graph->AddNode(Milliseconds(rng.NextUniform(80.0, 160.0)));
    }
    return graph;
  };
  return profile;
}

}  // namespace

int main() {
  const MachineConfig machine;  // Sequent Symmetry defaults
  const AppProfile scan = MakeScanProfile();
  const AppProfile intervening = MakeMatrixProfile();  // a typical co-runner

  std::printf("Measuring reallocation penalties for %s (working set %.0f blocks)\n\n",
              scan.name.c_str(), scan.working_set.blocks);

  TextTable table;
  table.SetHeader({"Q (ms)", "P^NA (us)", "P^A vs MATRIX (us)", "vs switch path (750 us)"});
  for (const double q_ms : {25.0, 100.0, 400.0}) {
    Section4Options options;
    options.q = Milliseconds(q_ms);
    const CachePenalties p = MeasureCachePenalties(machine, scan, intervening, options, 99);
    table.AddRow({FormatDouble(q_ms, 0), FormatDouble(p.pna_us, 0), FormatDouble(p.pa_us, 0),
                  FormatDouble(p.pna_us / 750.0, 2) + "x"});
  }
  std::printf("%s\n", table.Render().c_str());

  std::printf(
      "Reading the table: if P^NA is a small multiple of the switch path\n"
      "length and your scheduler reallocates every few hundred milliseconds,\n"
      "cache affinity will not dominate response time (the paper's central\n"
      "observation). If your application's working set or your machine's\n"
      "speed/cache product is much larger, rerun with MachineConfig\n"
      "processor_speed / cache_size_factor scaled up.\n");
  return 0;
}
